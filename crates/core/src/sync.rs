//! Tagged atomic pointers carrying the paper's *marked* and *valid* bits.
//!
//! Every shared node reference `s.next[i]` packs two flags into the low bits
//! of the pointer word (nodes are at least 8-byte aligned, so two bits are
//! free):
//!
//! * **marked** (bit 0) — set when the node *owning this reference* is being
//!   physically removed at this level. Once set, the reference is immutable;
//!   this immutability is what makes the relink optimization (replacing a
//!   whole chain of marked references with a single CAS) correct.
//! * **invalid** (bit 1) — meaningful on `next[0]` only, and only in the
//!   lazy variant: an unmarked+invalid node is logically deleted but not yet
//!   committed for physical removal (it can still be resurrected by an
//!   insert of the same key flipping it back to valid).
//!
//! [`TagPtr`] is a decoded word (pointer + flags); [`TaggedAtomic`] is the
//! atomic cell. All compare-and-swap operations work on full words, so the
//! paper's `casMark` / `casValid` / `casMarkValid` / `casNext` are expressed
//! as loads plus full-word CAS.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Execution facade: in normal builds this is a no-op the optimizer erases,
/// so [`TaggedAtomic`] compiles straight down to `std::sync::atomic`. Under
/// `--features deterministic` every tagged-atomic access first yields to
/// the cooperative scheduler (see [`crate::det`]), turning each shared
/// load/store/CAS into a replayable scheduling point.
#[inline(always)]
fn facade_yield() {
    #[cfg(feature = "deterministic")]
    crate::det::yield_point();
}

const MARK_BIT: usize = 0b01;
const INVALID_BIT: usize = 0b10;
const TAG_MASK: usize = 0b11;

/// A decoded tagged pointer: target plus (marked, valid) flags.
pub struct TagPtr<T> {
    raw: usize,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for TagPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TagPtr<T> {}

impl<T> PartialEq for TagPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for TagPtr<T> {}

impl<T> TagPtr<T> {
    /// Packs a pointer and flags into a tagged word.
    ///
    /// # Panics
    ///
    /// Debug-panics if `ptr` is not at least 4-byte aligned.
    #[inline]
    pub fn new(ptr: *mut T, marked: bool, valid: bool) -> Self {
        debug_assert_eq!(ptr as usize & TAG_MASK, 0, "pointer too unaligned to tag");
        let mut raw = ptr as usize;
        if marked {
            raw |= MARK_BIT;
        }
        if !valid {
            raw |= INVALID_BIT;
        }
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// An unmarked, valid reference (the state of freshly allocated nodes).
    #[inline]
    pub fn clean(ptr: *mut T) -> Self {
        Self::new(ptr, false, true)
    }

    /// The null reference (unmarked, valid).
    #[inline]
    pub fn null() -> Self {
        Self::clean(std::ptr::null_mut())
    }

    /// The raw word (for debugging).
    #[inline]
    pub fn raw(self) -> usize {
        self.raw
    }

    /// The pointer with tags stripped.
    #[inline]
    pub fn ptr(self) -> *mut T {
        (self.raw & !TAG_MASK) as *mut T
    }

    /// Whether the mark bit is set.
    #[inline]
    pub fn marked(self) -> bool {
        self.raw & MARK_BIT != 0
    }

    /// Whether the valid bit is set (i.e. the INVALID flag is clear).
    #[inline]
    pub fn valid(self) -> bool {
        self.raw & INVALID_BIT == 0
    }

    /// This word with a different target but identical flags — used by the
    /// relink optimization, which must preserve the predecessor's own flags
    /// while swinging the reference over a marked chain.
    #[inline]
    pub fn with_ptr(self, ptr: *mut T) -> Self {
        debug_assert_eq!(ptr as usize & TAG_MASK, 0);
        Self {
            raw: (ptr as usize) | (self.raw & TAG_MASK),
            _marker: PhantomData,
        }
    }

    /// This word with the mark bit set.
    #[inline]
    pub fn with_mark(self) -> Self {
        Self {
            raw: self.raw | MARK_BIT,
            _marker: PhantomData,
        }
    }

    /// This word with the valid flag replaced.
    #[inline]
    pub fn with_valid(self, valid: bool) -> Self {
        let raw = if valid {
            self.raw & !INVALID_BIT
        } else {
            self.raw | INVALID_BIT
        };
        Self {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for TagPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TagPtr({:p}, marked={}, valid={})",
            self.ptr(),
            self.marked(),
            self.valid()
        )
    }
}

/// An atomic tagged pointer cell.
pub struct TaggedAtomic<T> {
    cell: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T: Send + Sync> Send for TaggedAtomic<T> {}
unsafe impl<T: Send + Sync> Sync for TaggedAtomic<T> {}

impl<T> TaggedAtomic<T> {
    /// A cell holding the null clean reference.
    pub fn null() -> Self {
        Self {
            cell: AtomicUsize::new(TagPtr::<T>::null().raw()),
            _marker: PhantomData,
        }
    }

    /// A cell initialized to `word`.
    #[allow(dead_code)]
    pub fn new(word: TagPtr<T>) -> Self {
        Self {
            cell: AtomicUsize::new(word.raw()),
            _marker: PhantomData,
        }
    }

    /// Atomically loads the word (Acquire).
    #[inline]
    pub fn load(&self) -> TagPtr<T> {
        facade_yield();
        TagPtr {
            raw: self.cell.load(Ordering::Acquire),
            _marker: PhantomData,
        }
    }

    /// Plain store (Release). Only for unpublished nodes (initialization).
    #[inline]
    pub fn store(&self, word: TagPtr<T>) {
        facade_yield();
        self.cell.store(word.raw(), Ordering::Release);
    }

    /// Full-word compare-and-swap. Returns `Ok(())` on success and the
    /// observed word on failure.
    #[inline]
    pub fn compare_exchange(&self, current: TagPtr<T>, new: TagPtr<T>) -> Result<(), TagPtr<T>> {
        facade_yield();
        self.cell
            .compare_exchange(current.raw(), new.raw(), Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(|raw| TagPtr {
                raw,
                _marker: PhantomData,
            })
    }

    /// Address of the cell, used by the cache simulator.
    #[inline]
    pub fn addr(&self) -> usize {
        &self.cell as *const _ as usize
    }
}

impl<T> fmt::Debug for TaggedAtomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TaggedAtomic({:?})", self.load())
    }
}

/// A plain atomic word routed through the execution facade: every access
/// is a yield point of the deterministic scheduler, exactly like
/// [`TaggedAtomic`]. Used for coordination words that are not tagged node
/// pointers — the batch executor's publication-slot states and per-socket
/// combiner leases — so the `deterministic` stress runner can interleave
/// (and replay) combined executions at the same granularity as the data
/// structure itself.
#[derive(Debug)]
pub struct FacadeAtomicUsize {
    cell: AtomicUsize,
}

impl FacadeAtomicUsize {
    /// A cell initialized to `v`.
    pub const fn new(v: usize) -> Self {
        Self {
            cell: AtomicUsize::new(v),
        }
    }

    /// Atomically loads the word (Acquire).
    #[inline]
    pub fn load(&self) -> usize {
        facade_yield();
        self.cell.load(Ordering::Acquire)
    }

    /// Atomically stores `v` (Release).
    #[inline]
    pub fn store(&self, v: usize) {
        facade_yield();
        self.cell.store(v, Ordering::Release);
    }

    /// Full-word compare-and-swap (AcqRel on success, Acquire on failure).
    /// Returns the observed word on failure.
    #[inline]
    pub fn compare_exchange(&self, current: usize, new: usize) -> Result<usize, usize> {
        facade_yield();
        self.cell
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Atomic add (AcqRel), returning the previous value. Used by the
    /// reclamation subsystem's shared counters, whose interleaving with
    /// the grace-period protocol the deterministic scheduler must control.
    #[inline]
    pub fn fetch_add(&self, v: usize) -> usize {
        facade_yield();
        self.cell.fetch_add(v, Ordering::AcqRel)
    }

    /// Atomic swap (SeqCst), returning the previous value. Exists for the
    /// reclamation pin announce: on x86 a locked RMW is a full barrier, so
    /// it replaces the costlier `store + fence(SeqCst)` pair.
    #[inline]
    pub fn swap_seq_cst(&self, v: usize) -> usize {
        facade_yield();
        self.cell.swap(v, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_flags() {
        let x = Box::into_raw(Box::new(17u64));
        for &marked in &[false, true] {
            for &valid in &[false, true] {
                let w = TagPtr::new(x, marked, valid);
                assert_eq!(w.ptr(), x);
                assert_eq!(w.marked(), marked);
                assert_eq!(w.valid(), valid);
            }
        }
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn clean_is_unmarked_valid() {
        let w = TagPtr::<u64>::null();
        assert!(!w.marked());
        assert!(w.valid());
        assert!(w.ptr().is_null());
    }

    #[test]
    fn with_mark_preserves_ptr_and_valid() {
        let x = Box::into_raw(Box::new(0u64));
        let w = TagPtr::new(x, false, false).with_mark();
        assert!(w.marked());
        assert!(!w.valid());
        assert_eq!(w.ptr(), x);
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn with_ptr_preserves_tags() {
        let a = Box::into_raw(Box::new(0u64));
        let b = Box::into_raw(Box::new(1u64));
        let w = TagPtr::new(a, true, false).with_ptr(b);
        assert_eq!(w.ptr(), b);
        assert!(w.marked());
        assert!(!w.valid());
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn cas_succeeds_only_on_exact_word() {
        let x = Box::into_raw(Box::new(5u64));
        let cell = TaggedAtomic::new(TagPtr::clean(x));
        // Same pointer, different flags: must fail.
        let wrong = TagPtr::new(x, true, true);
        assert!(cell
            .compare_exchange(wrong, TagPtr::null())
            .is_err());
        // Exact word: succeeds.
        assert!(cell
            .compare_exchange(TagPtr::clean(x), TagPtr::new(x, true, false))
            .is_ok());
        let seen = cell.load();
        assert!(seen.marked());
        assert!(!seen.valid());
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn failed_cas_returns_observed() {
        let cell = TaggedAtomic::<u64>::null();
        let other = TagPtr::<u64>::null().with_mark();
        cell.store(other);
        match cell.compare_exchange(TagPtr::null(), TagPtr::null()) {
            Err(w) => assert!(w.marked()),
            Ok(()) => panic!("CAS must fail"),
        }
    }

    proptest! {
        #[test]
        fn flag_transitions_compose(m1: bool, v1: bool, v2: bool) {
            let w = TagPtr::<u64>::new(std::ptr::null_mut(), m1, v1).with_valid(v2);
            prop_assert_eq!(w.marked(), m1);
            prop_assert_eq!(w.valid(), v2);
            let w2 = w.with_mark();
            prop_assert!(w2.marked());
            prop_assert_eq!(w2.valid(), v2);
        }
    }
}
