//! Deterministic-schedule execution (the `deterministic` cargo feature).
//!
//! Normal builds compile [`crate::sync::TaggedAtomic`] straight down to
//! `std::sync::atomic` with no indirection. With `--features deterministic`
//! every tagged-atomic load/store/CAS (and the lazy protocol's `inserted`
//! flag) first passes through [`yield_point`], which hands control to a
//! seeded cooperative scheduler: exactly one registered thread runs between
//! consecutive shared-memory accesses, so the whole interleaving — and
//! therefore every operation result — is a pure function of the schedule
//! seed and policy. A failing seed replays exactly.
//!
//! Two exploration policies are provided (plus replay):
//!
//! * [`Policy::RoundRobin`] — rotate through live threads every `quantum`
//!   steps. [`round_robin_family`] enumerates every (quantum, start-thread)
//!   combination up to a bound, giving bounded-exhaustive coverage of small
//!   schedules.
//! * [`Policy::Pct`] — PCT-style: threads get random priorities from the
//!   seed, the highest-priority live thread always runs, and at `d` random
//!   change points the running thread's priority drops below everyone
//!   else's. Good at surfacing bugs that need a small number of adversarial
//!   preemptions.
//! * [`Policy::Replay`] — follow an explicit `(thread, steps)` segment list
//!   (produced by shrinking a failing trace), falling back to round-robin
//!   when the list is exhausted or prescribes a finished thread.
//!
//! Threads that block outside the facade (OS mutexes, spinlocks, channels)
//! must not run under this scheduler: a blocked token-holder would starve
//! the thread it waits for. The stress runner therefore restricts
//! deterministic mode to the lock-free structures whose shared accesses all
//! go through `TaggedAtomic`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// How the scheduler picks the next thread at each yield point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Rotate through live threads, switching every `quantum` steps. The
    /// starting thread is `seed % threads`.
    RoundRobin {
        /// Steps a thread runs before the token rotates (min 1).
        quantum: u32,
    },
    /// Random thread priorities with `change_points` priority drops at
    /// steps drawn uniformly from `1..expected_steps`.
    Pct {
        /// Number of priority-change points to inject.
        change_points: u32,
        /// Horizon the change points are drawn from (roughly the expected
        /// total number of shared-memory accesses in the run).
        expected_steps: u64,
    },
    /// Follow recorded `(thread, steps)` segments, then round-robin.
    Replay {
        /// The schedule to follow, as run-length-encoded thread choices.
        segments: Vec<(u16, u32)>,
    },
}

/// A complete deterministic-run configuration.
#[derive(Clone, Debug)]
pub struct DetConfig {
    /// Seed for every random choice the policy makes.
    pub seed: u64,
    /// Scheduling policy.
    pub policy: Policy,
    /// Abort the run (by panicking every worker) past this many steps —
    /// a safety valve against unforeseen livelocks.
    pub max_steps: u64,
    /// Force a rotation after this many consecutive steps on one thread,
    /// so priority-based schedules cannot starve a helper a spinning
    /// thread depends on.
    pub starvation_limit: u32,
}

impl DetConfig {
    /// A config with default bounds (2M steps, 50k-step starvation valve).
    pub fn new(seed: u64, policy: Policy) -> Self {
        Self {
            seed,
            policy,
            max_steps: 2_000_000,
            starvation_limit: 50_000,
        }
    }
}

/// Every (quantum, starting-thread) round-robin schedule with quantum up to
/// `max_quantum` — a bounded-exhaustive family of small schedules. The
/// returned pairs are `(seed, policy)`; the seed only selects the starting
/// thread.
pub fn round_robin_family(threads: u16, max_quantum: u32) -> Vec<(u64, Policy)> {
    let mut out = Vec::new();
    for quantum in 1..=max_quantum.max(1) {
        for start in 0..threads.max(1) {
            out.push((start as u64, Policy::RoundRobin { quantum }));
        }
    }
    out
}

/// The scheduling decisions of one deterministic run: entry `i` is the
/// thread granted step `i`. Two runs with the same seed, policy, and
/// workload produce identical traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The seed the run was driven by.
    pub seed: u64,
    /// Chosen thread per step.
    pub decisions: Vec<u16>,
}

impl Trace {
    /// Run-length encoding of the decisions: `(thread, consecutive steps)`.
    pub fn segments(&self) -> Vec<(u16, u32)> {
        let mut out: Vec<(u16, u32)> = Vec::new();
        for &t in &self.decisions {
            match out.last_mut() {
                Some((last, n)) if *last == t => *n += 1,
                _ => out.push((t, 1)),
            }
        }
        out
    }

    /// Number of context switches in the schedule.
    pub fn preemptions(&self) -> usize {
        self.segments().len().saturating_sub(1)
    }

    /// Compact human-readable rendering: `seed=7 steps=9 | t0*4 t1*2 t0*3`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("seed={} steps={} |", self.seed, self.decisions.len());
        for (t, n) in self.segments() {
            let _ = write!(s, " t{t}*{n}");
        }
        s
    }
}

enum PolicyState {
    RoundRobin {
        quantum: u32,
    },
    Pct {
        priorities: Vec<u64>,
        change_steps: Vec<u64>,
        next_change: usize,
        demote_next: u64,
    },
    Replay {
        segments: Vec<(u16, u32)>,
        idx: usize,
        used: u32,
    },
}

impl PolicyState {
    fn init(cfg: &DetConfig, threads: usize) -> Self {
        match &cfg.policy {
            Policy::RoundRobin { quantum } => PolicyState::RoundRobin {
                quantum: (*quantum).max(1),
            },
            Policy::Pct {
                change_points,
                expected_steps,
            } => {
                let mut rng = SmallRng::seed_from_u64(cfg.seed);
                // Unique-by-construction high priorities; demotions count
                // down from just below the initial band, so every demoted
                // thread ranks below all never-demoted threads.
                const BASE: u64 = 1 << 32;
                let priorities = (0..threads)
                    .map(|_| BASE + rng.gen_range(0..BASE))
                    .collect();
                let horizon = (*expected_steps).max(2);
                let mut change_steps: Vec<u64> = (0..*change_points)
                    .map(|_| rng.gen_range(1..horizon))
                    .collect();
                change_steps.sort_unstable();
                PolicyState::Pct {
                    priorities,
                    change_steps,
                    next_change: 0,
                    demote_next: BASE - 1,
                }
            }
            Policy::Replay { segments } => PolicyState::Replay {
                segments: segments.clone(),
                idx: 0,
                used: 0,
            },
        }
    }
}

struct State {
    started: bool,
    registered: usize,
    expected: usize,
    finished: Vec<bool>,
    /// Whether each thread has returned from `step_wait` since it was last
    /// granted the token — i.e. is executing (or has executed) its granted
    /// step. Without this, whether a freshly arriving thread makes a
    /// scheduling decision would depend on real-time arrival order.
    consumed: Vec<bool>,
    live: usize,
    current: usize,
    run_len: u32,
    step: u64,
    overflow: bool,
    trace: Vec<u16>,
    policy: PolicyState,
    max_steps: u64,
    starvation_limit: u32,
}

fn next_live(finished: &[bool], from: usize) -> usize {
    let n = finished.len();
    for d in 1..=n {
        let t = (from + d) % n;
        if !finished[t] {
            return t;
        }
    }
    unreachable!("no live thread to schedule");
}

/// Picks the thread for the next step. Must only be called with at least
/// one live thread.
fn choose(st: &mut State) -> usize {
    debug_assert!(st.live > 0);
    let State {
        policy,
        finished,
        current,
        run_len,
        step,
        starvation_limit,
        ..
    } = st;
    let cur = *current;
    let cur_live = !finished[cur];
    let starved = cur_live && *run_len >= *starvation_limit;
    match policy {
        PolicyState::RoundRobin { quantum } => {
            if cur_live && !starved && *run_len < *quantum {
                cur
            } else {
                next_live(finished, cur)
            }
        }
        PolicyState::Pct {
            priorities,
            change_steps,
            next_change,
            demote_next,
        } => {
            while *next_change < change_steps.len() && *step >= change_steps[*next_change] {
                if cur_live {
                    priorities[cur] = *demote_next;
                    *demote_next -= 1;
                }
                *next_change += 1;
            }
            if starved {
                priorities[cur] = *demote_next;
                *demote_next -= 1;
            }
            (0..finished.len())
                .filter(|&t| !finished[t])
                .max_by_key(|&t| priorities[t])
                .expect("live thread")
        }
        PolicyState::Replay {
            segments,
            idx,
            used,
        } => {
            loop {
                if *idx >= segments.len() {
                    break;
                }
                let (t, len) = segments[*idx];
                if finished[t as usize] || *used >= len {
                    *idx += 1;
                    *used = 0;
                    continue;
                }
                *used += 1;
                return t as usize;
            }
            // Schedule exhausted (threads ran longer than the recorded
            // trace, e.g. after shrinking): degrade to round-robin.
            next_live(finished, cur)
        }
    }
}

/// The cooperative scheduler one deterministic run executes under.
pub struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, g: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }

    /// Registers worker `tid` and blocks until all expected workers have
    /// registered. The last registrant makes the first scheduling decision.
    fn register(&self, tid: usize) {
        let mut st = self.lock();
        debug_assert!(tid < st.expected);
        st.registered += 1;
        if st.registered == st.expected {
            st.started = true;
            let first = choose(&mut st);
            st.trace.push(first as u16);
            st.current = first;
            st.run_len = 1;
            self.cv.notify_all();
        } else {
            while !st.started {
                st = self.wait(st);
            }
        }
    }

    /// One yield point: if this thread holds the token *and consumed its
    /// grant* it has just finished its granted step, so the next decision
    /// is made here; either way the call returns only once the token is
    /// (re)granted to this thread.
    fn step_wait(&self, tid: usize) {
        let mut st = self.lock();
        if st.overflow {
            panic!("deterministic run aborted: schedule bound exceeded");
        }
        if st.started && st.current == tid && st.consumed[tid] && !st.finished[tid] {
            st.consumed[tid] = false;
            st.step += 1;
            if st.step > st.max_steps {
                st.overflow = true;
                self.cv.notify_all();
                panic!(
                    "deterministic schedule exceeded max_steps={} (possible livelock); \
                     replay the seed with a larger DetConfig::max_steps",
                    st.max_steps
                );
            }
            let next = choose(&mut st);
            st.trace.push(next as u16);
            if next == st.current {
                st.run_len += 1;
            } else {
                st.run_len = 1;
                st.current = next;
                self.cv.notify_all();
            }
        }
        loop {
            if st.overflow {
                panic!("deterministic run aborted: schedule bound exceeded");
            }
            if st.started && st.current == tid {
                st.consumed[tid] = true;
                return;
            }
            st = self.wait(st);
        }
    }

    /// Marks `tid` finished and, if it held the token, passes it on. Never
    /// panics (it runs from a drop guard, possibly during unwinding).
    fn finish(&self, tid: usize) {
        let mut st = self.lock();
        if st.finished[tid] {
            return;
        }
        st.finished[tid] = true;
        st.live -= 1;
        if st.live == 0 || st.overflow {
            self.cv.notify_all();
            return;
        }
        if st.current == tid {
            st.step += 1;
            let next = choose(&mut st);
            st.trace.push(next as u16);
            st.current = next;
            st.run_len = 1;
            self.cv.notify_all();
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The yield point every instrumented shared-memory access passes through.
/// A no-op on threads not registered with a scheduler (so enabling the
/// feature does not break ordinary tests), otherwise blocks until the
/// scheduler grants this thread its next step.
#[inline]
pub fn yield_point() {
    let entry = ACTIVE.with(|a| a.borrow().clone());
    if let Some((sched, tid)) = entry {
        sched.step_wait(tid);
    }
}

/// Whether the calling thread is running under a deterministic scheduler.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// The current global step count, when running under a scheduler. Because
/// execution is sequentialized, this is a deterministic logical clock
/// suitable for linearizability timestamps.
pub fn active_step() -> Option<u64> {
    ACTIVE.with(|a| {
        a.borrow()
            .as_ref()
            .map(|(sched, _)| sched.lock().step)
    })
}

struct FinishGuard {
    sched: Arc<Scheduler>,
    tid: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = None);
        self.sched.finish(self.tid);
    }
}

/// Runs `workers` to completion under the deterministic scheduler and
/// returns the schedule trace. Worker `i` is thread id `i` in the trace.
/// A worker panic (assertion failure, schedule-bound overflow) is
/// propagated after all workers have stopped.
///
/// Workers must synchronize exclusively through instrumented accesses —
/// see the module docs for why lock-based structures are excluded.
pub fn run_threads<'env>(
    cfg: &DetConfig,
    workers: Vec<Box<dyn FnOnce() + Send + 'env>>,
) -> Trace {
    let n = workers.len();
    assert!(n > 0, "need at least one worker");
    assert!(n <= u16::MAX as usize, "trace encodes thread ids as u16");
    let sched = Arc::new(Scheduler {
        state: Mutex::new(State {
            started: false,
            registered: 0,
            expected: n,
            finished: vec![false; n],
            consumed: vec![false; n],
            live: n,
            // Seed-selected starting point for round-robin rotation;
            // priority policies ignore it at the first decision.
            current: (cfg.seed % n as u64) as usize,
            run_len: 0,
            step: 0,
            overflow: false,
            trace: Vec::new(),
            policy: PolicyState::init(cfg, n),
            max_steps: cfg.max_steps,
            starvation_limit: cfg.starvation_limit.max(1),
        }),
        cv: Condvar::new(),
    });
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for (tid, work) in workers.into_iter().enumerate() {
            let sched = Arc::clone(&sched);
            handles.push(s.spawn(move || {
                ACTIVE.with(|a| *a.borrow_mut() = Some((Arc::clone(&sched), tid)));
                let _guard = FinishGuard {
                    sched: Arc::clone(&sched),
                    tid,
                };
                sched.register(tid);
                // Block for a first grant before touching anything, so the
                // whole run (not just the instrumented part) is sequential.
                yield_point();
                work();
            }));
        }
        let mut panic_payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic_payload.get_or_insert(p);
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
    });
    let st = sched.lock();
    Trace {
        seed: cfg.seed,
        decisions: st.trace.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counting_workers<'a>(
        counter: &'a AtomicU64,
        order: &'a Mutex<Vec<u16>>,
        n: usize,
        steps: usize,
    ) -> Vec<Box<dyn FnOnce() + Send + 'a>> {
        (0..n)
            .map(|tid| {
                let b: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    for _ in 0..steps {
                        yield_point();
                        counter.fetch_add(1, Ordering::Relaxed);
                        order
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(tid as u16);
                    }
                });
                b
            })
            .collect()
    }

    #[test]
    fn round_robin_interleaves_deterministically() {
        let run = |seed| {
            let counter = AtomicU64::new(0);
            let order = Mutex::new(Vec::new());
            let cfg = DetConfig::new(seed, Policy::RoundRobin { quantum: 1 });
            let trace = run_threads(&cfg, counting_workers(&counter, &order, 3, 8));
            (
                counter.load(Ordering::Relaxed),
                order.into_inner().unwrap(),
                trace,
            )
        };
        let (c1, o1, t1) = run(0);
        let (c2, o2, t2) = run(0);
        assert_eq!(c1, 24);
        assert_eq!(c1, c2);
        assert_eq!(o1, o2, "execution order must replay exactly");
        assert_eq!(t1, t2, "trace must replay exactly");
        // Quantum-1 round-robin visits threads cyclically.
        assert_eq!(&o1[..6], &[0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn seed_rotates_round_robin_start() {
        let order_for = |seed| {
            let counter = AtomicU64::new(0);
            let order = Mutex::new(Vec::new());
            let cfg = DetConfig::new(seed, Policy::RoundRobin { quantum: 1 });
            run_threads(&cfg, counting_workers(&counter, &order, 3, 2));
            order.into_inner().unwrap()
        };
        assert_eq!(order_for(0)[0], 0); // starts at thread `seed % n`
        assert_eq!(order_for(1)[0], 1);
        assert_eq!(order_for(2)[0], 2);
    }

    #[test]
    fn pct_replays_exactly() {
        let run = |seed| {
            let counter = AtomicU64::new(0);
            let order = Mutex::new(Vec::new());
            let cfg = DetConfig::new(
                seed,
                Policy::Pct {
                    change_points: 3,
                    expected_steps: 40,
                },
            );
            let trace = run_threads(&cfg, counting_workers(&counter, &order, 4, 10));
            (order.into_inner().unwrap(), trace)
        };
        let (o1, t1) = run(7);
        let (o2, t2) = run(7);
        assert_eq!(o1, o2);
        assert_eq!(t1, t2);
        assert_eq!(o1.len(), 40);
    }

    #[test]
    fn replay_policy_follows_segments() {
        let run = || {
            let counter = AtomicU64::new(0);
            let order = Mutex::new(Vec::new());
            let cfg = DetConfig::new(
                0,
                Policy::Replay {
                    segments: vec![(1, 3), (0, 2), (1, 1)],
                },
            );
            let trace = run_threads(&cfg, counting_workers(&counter, &order, 2, 4));
            (order.into_inner().unwrap(), trace)
        };
        let (o1, t1) = run();
        let (o2, t2) = run();
        assert_eq!(o1, o2);
        assert_eq!(t1, t2);
        // The trace's decisions consume the segments in order.
        assert_eq!(&t1.decisions[..6], &[1, 1, 1, 0, 0, 1]);
        assert_eq!(o1.len(), 8); // every op ran; remainder served round-robin
    }

    #[test]
    fn trace_segments_roundtrip() {
        let t = Trace {
            seed: 9,
            decisions: vec![0, 0, 1, 1, 1, 0, 2],
        };
        assert_eq!(t.segments(), vec![(0, 2), (1, 3), (0, 1), (2, 1)]);
        assert_eq!(t.preemptions(), 3);
        assert_eq!(t.render(), "seed=9 steps=7 | t0*2 t1*3 t0*1 t2*1");
    }

    #[test]
    fn starvation_valve_rotates() {
        // Quantum far above the valve: the valve must still rotate.
        let counter = AtomicU64::new(0);
        let order = Mutex::new(Vec::new());
        let mut cfg = DetConfig::new(2, Policy::RoundRobin { quantum: 1_000_000 });
        cfg.starvation_limit = 4;
        run_threads(&cfg, counting_workers(&counter, &order, 2, 8));
        let o = order.into_inner().unwrap();
        assert!(o.windows(5).all(|w| w.iter().any(|&t| t != w[0])));
    }

    #[test]
    fn worker_panic_propagates_without_hanging() {
        let res = std::panic::catch_unwind(|| {
            let counter = AtomicU64::new(0);
            let cfg = DetConfig::new(0, Policy::RoundRobin { quantum: 1 });
            let workers: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| panic!("worker bug")),
                Box::new(|| {
                    for _ in 0..4 {
                        yield_point();
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                }),
            ];
            run_threads(&cfg, workers);
        });
        assert!(res.is_err());
    }

    #[test]
    fn family_enumerates_quantum_and_start() {
        let fam = round_robin_family(3, 2);
        assert_eq!(fam.len(), 6);
        assert!(fam
            .iter()
            .all(|(_, p)| matches!(p, Policy::RoundRobin { .. })));
    }
}
