//! Shared lock-free hash index for O(1) point reads (the Skip Hash fast
//! path).
//!
//! The index maps key hashes to generation-tagged `(node, slot)` entries
//! over live shared nodes (plain maps) or blocked-anchor slots
//! ([`crate::BlockedSkipMap`]). It is an *accelerator, never an
//! authority*: every entry is re-validated on read against the node it
//! names — generation first (the [`crate::reclaim`] retire protocol bumps
//! it, so entries to retired incarnations can never validate), then the
//! key, then the node's own level-0 state word — and any failure falls
//! back to the ordered descent. Publishing and invalidation are therefore
//! best-effort: a lost publish or a skipped invalidation costs a descent,
//! not correctness.
//!
//! # Coherence protocol (see ARCHITECTURE §7)
//!
//! * **publish-after-link** — an entry is published only after its node is
//!   reachable in the shared structure (level-0 link CAS, lazy
//!   resurrection, or a blocked publish CAS), so a hit can always be
//!   re-verified against live shared state.
//! * **invalidate-before-retire** — removal paths tombstone the entry
//!   before the node is retired onto a limbo list; the retire-side
//!   generation bump is the hard backstop that makes the tombstone pure
//!   hygiene.
//! * **generation re-check ordering** — a reader first proves the pair
//!   `(ptr, gen)` consistent (the slot's tag word doubles as a seqlock),
//!   then checks `Node::generation_of(ptr) == gen` under its reclamation
//!   pin. Equality proves the incarnation has not been retired since
//!   publish, which (with the pin blocking recycling) makes the
//!   dereference safe — exactly the [`crate::graph::NodeRef`] argument.
//!
//! # Slot layout
//!
//! Each bucket is three facade-atomic words (every access is a
//! deterministic-scheduler yield point, so stress schedules interleave
//! index and structure steps at the same granularity):
//!
//! ```text
//! tag:  [63] present | [62:32] key-hash signature | [31:0] generation
//! ptr:  the shared node (anchor, for blocked entries)
//! aux:  layer-private word (in-block slot for blocked anchors)
//! ```
//!
//! `tag` values 0 (`EMPTY`), 1 (`TOMBSTONE`) and 2 (`BUSY`) are reserved;
//! a present tag always has bit 63 set. Writers claim a slot by CAS-ing
//! the tag to `BUSY`, write `ptr`/`aux`, then release-store the final tag;
//! readers load the tag, the payload, then the tag again and reject the
//! entry unless both tag loads agree — so a reader can never pair one
//! entry's pointer with another's generation. A writer that finds a slot
//! busy simply moves on (the index tolerates lost publishes), so no
//! operation ever waits on a stalled peer.
//!
//! # NUMA-aware segments
//!
//! The table is split into one segment per NUMA node (detected topology,
//! or the paper's machine as a fallback), selected by the top hash bits;
//! each segment owns an independently grown power-of-two table, so probe
//! chains stay within one segment's storage (first-touched by the
//! building thread) instead of striding a single machine-wide array.

use crate::adapt::AdaptConfig;
use crate::node::Node;
use crate::sync::FacadeAtomicUsize;
use instrument::{MeanWindow, ThreadCtx};
use numa::{Placement, Topology};
use std::hash::{Hash, Hasher};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

// Tag packing below folds a 32-bit generation and a 31-bit hash
// signature into one word.
const _: () = assert!(usize::BITS == 64, "the hash index packs (sig, gen) into one 64-bit word");

const TAG_EMPTY: usize = 0;
const TAG_TOMBSTONE: usize = 1;
const TAG_BUSY: usize = 2;
const TAG_PRESENT: usize = 1 << 63;

/// Linear-probe bound: past this, a publish gives up (after nudging the
/// segment to grow) and a lookup reports a miss. Bounds both the read
/// cost and the damage a pathological hash cluster can do.
/// Maximum linear-probe chain length before a lookup gives up (also the
/// width of [`SegmentOccupancy::probe_histogram`]).
pub const PROBE_LIMIT: usize = 16;

/// Occupancy snapshot of one NUMA segment's current table — the tuning
/// signal for [`crate::GraphConfig::index_capacity`]: `entries` near
/// `capacity * occ_grow_pct / 100` (75% by default) means the segment is
/// about to grow, and mass in the histogram's upper buckets means probe
/// chains (and thus point-read line costs) are long even though space
/// remains — the condition the windowed probe sensor turns into an early
/// grow when [`crate::GraphConfig::adapt`] is set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentOccupancy {
    /// Slots in the current table (power of two).
    pub capacity: usize,
    /// Slots ever claimed from empty in this table, tombstones included
    /// (the grow trigger compares this against `capacity` scaled by the
    /// occupancy threshold — 75% by default).
    pub used: usize,
    /// Present entries observed by the snapshot walk.
    pub entries: usize,
    /// Tombstoned slots (retired entries still occupying probe chains
    /// until the next grow drops them).
    pub tombstones: usize,
    /// Present entries binned by displacement from their home slot
    /// (`[0]` = direct hits; the last bucket absorbs the tail).
    pub probe_histogram: [u64; PROBE_LIMIT],
}

impl SegmentOccupancy {
    /// Fraction of the table occupied by present entries.
    pub fn load_factor(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.entries as f64 / self.capacity as f64
        }
    }

    /// Mean probe length over present entries (1.0 = every key home).
    pub fn mean_probe(&self) -> f64 {
        if self.entries == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .probe_histogram
            .iter()
            .enumerate()
            .map(|(d, n)| (d as u64 + 1) * n)
            .sum();
        weighted as f64 / self.entries as f64
    }
}
/// Occupancy growth threshold when no [`AdaptConfig`] is attached: grow
/// when a table is 75% full (counting tombstones, which occupy
/// probe-chain positions until a grow drops them). With adaptation the
/// threshold comes from [`AdaptConfig::occ_grow_pct`], and a windowed
/// mean-probe sensor can grow the segment early (see
/// [`HashIndex::publish`]).
const DEFAULT_GROW_PCT: usize = 75;
/// Smallest per-segment table; also the default when the configured
/// capacity hint is `0` (auto).
const MIN_SEGMENT_CAP: usize = 1 << 10;
/// Largest per-segment table a grow will produce.
const MAX_SEGMENT_CAP: usize = 1 << 24;

/// Deterministic key hasher (`SipHash-1-3` with the zero key): stress
/// replays and the deterministic scheduler need the same keys to land in
/// the same slots on every run, so no per-process `RandomState`.
fn hash_key<K: Hash>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    // One avalanche round on top: DefaultHasher's low bits are already
    // good, but the segment selector uses the *top* bits.
    let x = h.finish();
    let x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^ (x >> 33)
}

#[inline]
fn sig_of(hash: u64) -> usize {
    ((hash >> 33) as usize) & 0x7FFF_FFFF
}

#[inline]
fn tag_of(hash: u64, gen: u32) -> usize {
    TAG_PRESENT | (sig_of(hash) << 32) | gen as usize
}

#[inline]
fn tag_gen(tag: usize) -> u32 {
    tag as u32
}

#[inline]
fn tag_is_present(tag: usize) -> bool {
    tag & TAG_PRESENT != 0
}

#[inline]
fn tag_sig(tag: usize) -> usize {
    (tag >> 32) & 0x7FFF_FFFF
}

/// One bucket. See the module docs for the seqlock protocol tying the
/// three words together.
struct Slot {
    tag: FacadeAtomicUsize,
    ptr: FacadeAtomicUsize,
    aux: FacadeAtomicUsize,
}

impl Slot {
    const fn empty() -> Self {
        Self {
            tag: FacadeAtomicUsize::new(TAG_EMPTY),
            ptr: FacadeAtomicUsize::new(0),
            aux: FacadeAtomicUsize::new(0),
        }
    }
}

/// One power-of-two probe array. Tables are immutable in size; a segment
/// grows by building a successor and swapping the current-table pointer.
struct Table {
    mask: usize,
    /// Slots ever claimed from `EMPTY` (tombstones included): the grow
    /// trigger. Monotonic per table.
    used: AtomicUsize,
    slots: Box<[Slot]>,
}

impl Table {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        Box::new(Self {
            mask: cap - 1,
            used: AtomicUsize::new(0),
            slots: (0..cap).map(|_| Slot::empty()).collect(),
        })
    }

    fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>() + std::mem::size_of::<Self>()
    }
}

/// One NUMA segment: the current table plus every predecessor it grew
/// out of (parked until drop — entries hold no owned memory, but the
/// byte accounting and late readers of a just-swapped table need the
/// storage to stay mapped).
struct Segment {
    /// `Box<Table>` leaked into an atomic word; readers snapshot it
    /// lock-free. Retired predecessors keep raw reads safe: a table is
    /// only ever freed in `Drop`.
    current: AtomicUsize,
    /// Single-grower lease; losers skip the grow entirely.
    grow_lock: AtomicUsize,
    retired_tables: Mutex<Vec<Box<Table>>>,
    /// Entries tombstoned by invalidation (hygiene metric; monotonic).
    retired_entries: AtomicUsize,
    /// Entries published (monotonic; `published - retired_entries`
    /// over-approximates the live entry count by lost/overwritten slots).
    published: AtomicUsize,
    /// Windowed mean probe displacement of publishes (adaptive early
    /// growth sensor; only fed when an [`AdaptConfig`] is attached).
    probe_window: MeanWindow,
    /// Consecutive closed windows whose mean probe met the growth
    /// threshold — the dwell guard for probe-signal growth. Growth is a
    /// one-way ratchet, so the degenerate one-sided form of the
    /// [`crate::Hysteresis`] streak suffices.
    probe_streak: AtomicU32,
    /// Segment grows triggered by the probe signal alone (telemetry).
    probe_grows: AtomicUsize,
}

impl Segment {
    fn new(cap: usize) -> Self {
        Self {
            current: AtomicUsize::new(Box::into_raw(Table::new(cap)) as usize),
            grow_lock: AtomicUsize::new(0),
            retired_tables: Mutex::new(Vec::new()),
            retired_entries: AtomicUsize::new(0),
            published: AtomicUsize::new(0),
            probe_window: MeanWindow::new(),
            probe_streak: AtomicU32::new(0),
            probe_grows: AtomicUsize::new(0),
        }
    }

    fn table(&self) -> &Table {
        // Tables live until the segment drops; see `current`'s docs.
        unsafe { &*(self.current.load(Ordering::Acquire) as *const Table) }
    }

    fn bytes(&self) -> usize {
        let retired: usize = self
            .retired_tables
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|t| t.bytes())
            .sum();
        self.table().bytes() + retired
    }

    /// Doubles the table (single grower; losers and over-cap segments
    /// no-op). Live entries are re-published into the successor; a
    /// publish racing the copy may be lost — a later miss republishes it.
    fn grow(&self) {
        if self.grow_lock.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).is_err() {
            return;
        }
        let old = self.table();
        let cap = old.mask + 1;
        if cap < MAX_SEGMENT_CAP {
            let new = Table::new(cap * 2);
            for slot in old.slots.iter() {
                // Seqlock pair-read, as in `lookup_raw`.
                let t1 = slot.tag.load();
                if !tag_is_present(t1) {
                    continue;
                }
                let ptr = slot.ptr.load();
                let aux = slot.aux.load();
                if slot.tag.load() != t1 || ptr == 0 {
                    continue; // racing writer; entry is lost, not corrupted
                }
                // Rebuild the slot position from the signature: the low
                // index bits differ between tables, so re-derive them
                // from the signature's avalanche (good enough — a
                // misplaced entry is just a miss).
                Self::install(&new, tag_sig(t1) as u64, t1, ptr, aux);
            }
            let fresh = Box::into_raw(new) as usize;
            let prev = self.current.swap(fresh, Ordering::AcqRel);
            self.retired_tables
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(unsafe { Box::from_raw(prev as *mut Table) });
        }
        self.grow_lock.store(0, Ordering::Release);
    }

    /// Claims a slot in `table` for a fully-formed entry (migration path:
    /// the table is still private or contention is benign).
    fn install(table: &Table, pos_seed: u64, tag: usize, ptr: usize, aux: usize) {
        let mut i = pos_seed as usize & table.mask;
        for _ in 0..PROBE_LIMIT {
            let s = &table.slots[i];
            let seen = s.tag.load();
            if (seen == TAG_EMPTY || seen == TAG_TOMBSTONE)
                && s.tag.compare_exchange(seen, TAG_BUSY).is_ok()
            {
                if seen == TAG_EMPTY {
                    table.used.fetch_add(1, Ordering::Relaxed);
                }
                s.ptr.store(ptr);
                s.aux.store(aux);
                s.tag.store(tag);
                return;
            }
            i = (i + 1) & table.mask;
        }
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        let cur = *self.current.get_mut();
        drop(unsafe { Box::from_raw(cur as *mut Table) });
    }
}

/// A raw, seqlock-consistent index entry: the `(ptr, gen)` pair was
/// published together (never torn), but nothing about the node has been
/// validated yet. Consumers apply their own validation ladder —
/// [`HashIndex::read_node`] for plain nodes, the blocked map for anchor
/// slots.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawEntry<K, V> {
    pub ptr: NonNull<Node<K, V>>,
    pub gen: u32,
    /// Layer-private word (in-block slot index for blocked anchors).
    pub aux: usize,
}

/// Outcome of a fully validated plain-node index read. `Absent` is
/// authoritative only under the lazy protocol, where an unmarked invalid
/// node is the unique holder of its key.
#[derive(Debug)]
pub(crate) enum IndexRead<'g, K, V> {
    /// No entry (or an unusable one): descend.
    Miss,
    /// An entry failed generation / key / liveness validation: descend.
    /// (The reader tombstoned it when it was provably dead.)
    Stale,
    /// The validated live holder of the key, unmarked and valid.
    Hit(&'g Node<K, V>),
    /// Authoritative absence: the unique (lazy) holder is logically
    /// deleted. Carries that holder so an insert can resurrect it in
    /// place — the entry doubles as a tombstone and as the re-insertion
    /// fast path. (Never produced with the injected coherence bug
    /// compiled in — that build answers Hit before the liveness ladder.)
    #[cfg_attr(feature = "bug-injection", allow(dead_code))]
    Absent(&'g Node<K, V>),
}

/// The shared, lock-free, resizable hash index. One per indexed
/// structure, owned by its [`crate::SkipGraph`]; see the module docs.
pub struct HashIndex<K, V> {
    segments: Box<[Segment]>,
    /// Shift applied to a key hash to select a segment.
    seg_shift: u32,
    /// Adaptive growth thresholds; `None` keeps the static 75% trip-wire
    /// and no probe sensing.
    adapt: Option<AdaptConfig>,
    /// Type-erased deterministic hasher, captured where `K: Hash` was in
    /// scope so the graph core can publish and invalidate from `K: Ord`
    /// contexts (hooks in `ops.rs` / `graph/mod.rs`).
    hash_of: fn(&K) -> u64,
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

// The index stores raw node pointers but never owns nodes; sharing it
// follows the graph's own bounds.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for HashIndex<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for HashIndex<K, V> {}

impl<K, V> HashIndex<K, V> {
    /// Builds an index with one segment per NUMA node of the detected
    /// topology (paper machine fallback), sized for `capacity_hint` total
    /// entries (`0` = auto). Requires `K: Hash` only here — every other
    /// method runs through the captured hasher. `adapt` configures the
    /// growth policy; `None` keeps the static threshold.
    pub(crate) fn new(threads: usize, capacity_hint: usize, adapt: Option<AdaptConfig>) -> Self
    where
        K: Hash,
    {
        let nodes = Placement::new(&Topology::detect_or_paper(), threads.max(1)).num_nodes();
        let segments = nodes.max(1).next_power_of_two();
        let per_seg = if capacity_hint == 0 {
            MIN_SEGMENT_CAP * 4
        } else {
            (capacity_hint / segments).next_power_of_two()
        }
        .clamp(MIN_SEGMENT_CAP, MAX_SEGMENT_CAP);
        Self {
            segments: (0..segments).map(|_| Segment::new(per_seg)).collect(),
            seg_shift: 64 - segments.trailing_zeros(),
            adapt,
            hash_of: hash_key::<K>,
            _marker: std::marker::PhantomData,
        }
    }

    /// Segment grows triggered by the windowed probe signal alone, i.e.
    /// below the occupancy threshold (telemetry; always `0` without an
    /// [`AdaptConfig`]).
    pub(crate) fn probe_grows(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.probe_grows.load(Ordering::Relaxed))
            .sum()
    }

    #[inline]
    fn segment(&self, hash: u64) -> &Segment {
        let i = if self.segments.len() == 1 {
            0
        } else {
            (hash >> self.seg_shift) as usize & (self.segments.len() - 1)
        };
        &self.segments[i]
    }

    /// Total bytes of segment storage (current tables plus retired
    /// predecessors) — the `memory_stats` contribution.
    pub(crate) fn bytes(&self) -> usize {
        self.segments.iter().map(|s| s.bytes()).sum()
    }

    /// Entries tombstoned by invalidation since construction.
    pub(crate) fn retired_entries(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.retired_entries.load(Ordering::Relaxed))
            .sum()
    }

    /// Entries ever published (monotonic).
    pub(crate) fn published_entries(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.published.load(Ordering::Relaxed))
            .sum()
    }

    /// Total slots across every segment's current table (retired tables
    /// excluded): the denominator of the index's global load factor.
    pub(crate) fn capacity(&self) -> usize {
        self.segments.iter().map(|s| s.table().mask + 1).sum()
    }

    /// Installed NUMA segments (fixed at construction).
    pub(crate) fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Weak per-segment occupancy snapshot (see [`SegmentOccupancy`]):
    /// walks each segment's *current* table once, classifying slots and
    /// binning present entries by probe displacement from their home
    /// position. Concurrent publishes/invalidations may be half-observed —
    /// the numbers are telemetry for sizing `index_capacity`, not an
    /// invariant source.
    pub(crate) fn occupancy(&self) -> Vec<SegmentOccupancy> {
        self.segments
            .iter()
            .map(|seg| {
                let table = seg.table();
                let mut occ = SegmentOccupancy {
                    capacity: table.mask + 1,
                    used: table.used.load(Ordering::Relaxed).min(table.mask + 1),
                    ..SegmentOccupancy::default()
                };
                for (i, slot) in table.slots.iter().enumerate() {
                    let tag = slot.tag.load();
                    if tag == TAG_TOMBSTONE {
                        occ.tombstones += 1;
                        continue;
                    }
                    if !tag_is_present(tag) {
                        continue;
                    }
                    occ.entries += 1;
                    // The probe walks forward from `sig & mask`, so the
                    // wrapped distance from home is the entry's cost.
                    let home = tag_sig(tag) & table.mask;
                    let dist = i.wrapping_sub(home) & table.mask;
                    occ.probe_histogram[dist.min(PROBE_LIMIT - 1)] += 1;
                }
                occ
            })
            .collect()
    }

    /// Publishes `key -> (ptr, gen, aux)`. Best effort: a busy or full
    /// probe window drops the publish (and nudges the segment to grow).
    /// Callers pass a generation captured from the incarnation they just
    /// linked/observed live — publish-after-link.
    pub(crate) fn publish(&self, key: &K, ptr: NonNull<Node<K, V>>, gen: u32, aux: usize) {
        let hash = (self.hash_of)(key);
        let seg = self.segment(hash);
        let table = seg.table();
        let sig = sig_of(hash);
        let tag = tag_of(hash, gen);
        // Probe from the signature (not the raw hash): the position is
        // then recoverable from the tag alone, which is what lets a grow
        // re-install entries it can only see through their tags.
        let mut i = sig & table.mask;
        for _ in 0..PROBE_LIMIT {
            let s = &table.slots[i];
            let seen = s.tag.load();
            let takeable = seen == TAG_EMPTY
                || seen == TAG_TOMBSTONE
                || (tag_is_present(seen) && tag_sig(seen) == sig);
            if takeable && s.tag.compare_exchange(seen, TAG_BUSY).is_ok() {
                if seen == TAG_EMPTY {
                    table.used.fetch_add(1, Ordering::Relaxed);
                }
                s.ptr.store(ptr.as_ptr() as usize);
                s.aux.store(aux);
                s.tag.store(tag);
                seg.published.fetch_add(1, Ordering::Relaxed);
                self.after_publish(seg, table, i.wrapping_sub(sig) & table.mask);
                return;
            }
            i = (i + 1) & table.mask;
        }
        // Probe window exhausted: grow (if allowed) and drop the publish.
        seg.grow();
    }

    /// Post-publish growth policy. Two triggers:
    ///
    /// * **occupancy** — the share of ever-claimed slots crosses the
    ///   threshold (the configured [`AdaptConfig::occ_grow_pct`], or the
    ///   static 75% without adaptation);
    /// * **probe signal** (adaptive only) — the windowed mean probe
    ///   displacement of publishes meets [`AdaptConfig::probe_grow`] for
    ///   `dwell_windows + 1` consecutive windows, growing early when an
    ///   adversarial key mix clusters collisions below the occupancy
    ///   threshold.
    ///
    /// The probe-exhaustion `grow()` at the end of [`Self::publish`]
    /// remains the correctness backstop either way.
    fn after_publish(&self, seg: &Segment, table: &Table, displacement: usize) {
        let pct = self.adapt.map_or(DEFAULT_GROW_PCT, |a| a.occ_grow_pct as usize);
        let used = table.used.load(Ordering::Relaxed);
        if used * 100 > (table.mask + 1) * pct {
            seg.grow();
            return;
        }
        let Some(a) = self.adapt else { return };
        let Some(mean) = seg.probe_window.record(displacement as u32, a.window_ops) else {
            return;
        };
        if mean < a.probe_grow {
            seg.probe_streak.store(0, Ordering::Relaxed);
            return;
        }
        let streak = seg.probe_streak.load(Ordering::Relaxed) + 1;
        if streak <= a.dwell_windows {
            seg.probe_streak.store(streak, Ordering::Relaxed);
            return;
        }
        seg.probe_streak.store(0, Ordering::Relaxed);
        seg.probe_grows.fetch_add(1, Ordering::Relaxed);
        seg.grow();
    }

    /// Tombstones the entry for `key` if it still names `ptr`. Best
    /// effort (see the module docs: the retire-side generation bump is
    /// the backstop). `ptr == None` tombstones whatever entry the key
    /// currently has.
    pub(crate) fn invalidate(&self, key: &K, ptr: Option<NonNull<Node<K, V>>>) {
        let hash = (self.hash_of)(key);
        let seg = self.segment(hash);
        let table = seg.table();
        let sig = sig_of(hash);
        let mut i = sig & table.mask;
        for _ in 0..PROBE_LIMIT {
            let s = &table.slots[i];
            let seen = s.tag.load();
            if seen == TAG_EMPTY {
                return;
            }
            if tag_is_present(seen) && tag_sig(seen) == sig {
                let cur = s.ptr.load();
                let matches = match ptr {
                    Some(p) => cur == p.as_ptr() as usize,
                    None => true,
                };
                // Re-read the tag so a pointer observed mid-republish
                // (tag flipped to BUSY and back) cannot kill the fresh
                // entry of a different incarnation.
                if matches && s.tag.load() == seen {
                    if s.tag.compare_exchange(seen, TAG_TOMBSTONE).is_ok() {
                        seg.retired_entries.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
            }
            i = (i + 1) & table.mask;
        }
    }

    /// Seqlock-consistent raw lookup: the first present entry whose
    /// signature matches. No validation beyond pair consistency — see
    /// [`RawEntry`].
    pub(crate) fn lookup_raw(&self, key: &K) -> Option<RawEntry<K, V>> {
        let hash = (self.hash_of)(key);
        let table = self.segment(hash).table();
        let sig = sig_of(hash);
        let mut i = sig & table.mask;
        for _ in 0..PROBE_LIMIT {
            let s = &table.slots[i];
            let t1 = s.tag.load();
            if t1 == TAG_EMPTY {
                return None;
            }
            if tag_is_present(t1) && tag_sig(t1) == sig {
                let ptr = s.ptr.load();
                let aux = s.aux.load();
                if s.tag.load() == t1 {
                    if let Some(nn) = NonNull::new(ptr as *mut Node<K, V>) {
                        return Some(RawEntry {
                            ptr: nn,
                            gen: tag_gen(t1),
                            aux,
                        });
                    }
                }
                // Torn or republishing: fall through and keep probing —
                // duplicate-signature entries are possible after a grow.
            }
            i = (i + 1) & table.mask;
        }
        None
    }
}

impl<K: Ord, V> HashIndex<K, V> {
    /// The full validation ladder for a *plain* (one key per node) entry.
    /// Caller must hold a reclamation pin on the owning graph: the
    /// generation check proves the incarnation is not retired, and the
    /// pin then blocks its recycling while the returned reference is
    /// used.
    ///
    /// `lazy` selects the protocol: under it, an unmarked *invalid* node
    /// is the unique holder of its key, so the read is authoritative
    /// absence; eagerly-deleted nodes are marked and fall back instead.
    pub(crate) fn read_node(&self, key: &K, lazy: bool, ctx: &ThreadCtx) -> IndexRead<'_, K, V> {
        let Some(entry) = self.lookup_raw(key) else {
            return IndexRead::Miss;
        };
        // Generation re-check ordering: gen before any &Node deref.
        if unsafe { Node::generation_of(entry.ptr) } != entry.gen {
            self.invalidate(key, Some(entry.ptr));
            return IndexRead::Stale;
        }
        let node = unsafe { entry.ptr.as_ref() };
        if !node.is_data() || unsafe { node.key() } != key {
            // A signature collision (someone else's live entry): miss,
            // and leave the entry alone.
            return IndexRead::Miss;
        }
        // Injected coherence bug (harness validation only): trust the
        // published entry as if invalidate-before-retire had swept every
        // dead node out of the index, skipping the authoritative level-0
        // state re-check. A removal whose invalidation hook is elided
        // (see `logical_delete_eager`) then leaves a hit that contradicts
        // the linearized removal — the stale read the stress wall must
        // catch. See the `bug-injection` feature docs.
        #[cfg(feature = "bug-injection")]
        {
            let _ = (lazy, ctx);
            return IndexRead::Hit(node);
        }
        #[cfg(not(feature = "bug-injection"))]
        {
            // A recorded load: the hit node's level-0 word is a real
            // cache-line touch (the one line an index-served read costs),
            // so it must show up in the access matrices like any other.
            let w0 = node.load_next(0, ctx);
            if w0.marked() {
                // Dead incarnation awaiting retire: tombstone and descend
                // (a fresh insert of the key may own a new node).
                self.invalidate(key, Some(entry.ptr));
                return IndexRead::Stale;
            }
            if w0.valid() {
                IndexRead::Hit(node)
            } else if lazy {
                IndexRead::Absent(node)
            } else {
                IndexRead::Stale
            }
        }
    }
}

impl<K, V> std::fmt::Debug for HashIndex<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashIndex")
            .field("segments", &self.segments.len())
            .field("published", &self.published_entries())
            .field("retired_entries", &self.retired_entries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dangling(align_off: usize) -> NonNull<Node<u64, u64>> {
        // Unit tests of the table machinery never dereference entries,
        // so any aligned non-null address works as an opaque pointer.
        NonNull::new((64 + 64 * align_off) as *mut Node<u64, u64>).unwrap()
    }

    #[test]
    fn publish_lookup_invalidate_roundtrip() {
        let idx: HashIndex<u64, u64> = HashIndex::new(2, 1 << 12, None);
        let p = dangling(1);
        idx.publish(&7, p, 42, 3);
        let e = idx.lookup_raw(&7).expect("published entry");
        assert_eq!(e.ptr, p);
        assert_eq!(e.gen, 42);
        assert_eq!(e.aux, 3);
        assert!(idx.lookup_raw(&8).is_none());
        assert_eq!(idx.published_entries(), 1);

        // Wrong-pointer invalidation leaves the entry standing.
        idx.invalidate(&7, Some(dangling(2)));
        assert!(idx.lookup_raw(&7).is_some());
        assert_eq!(idx.retired_entries(), 0);

        idx.invalidate(&7, Some(p));
        assert!(idx.lookup_raw(&7).is_none());
        assert_eq!(idx.retired_entries(), 1);

        // Tombstoned slots are reusable.
        idx.publish(&7, p, 43, 0);
        assert_eq!(idx.lookup_raw(&7).unwrap().gen, 43);
    }

    #[test]
    fn republish_overwrites_generation() {
        let idx: HashIndex<u64, u64> = HashIndex::new(1, 1 << 10, None);
        let p = dangling(1);
        idx.publish(&5, p, 1, 0);
        idx.publish(&5, dangling(2), 9, 7);
        let e = idx.lookup_raw(&5).unwrap();
        assert_eq!(e.gen, 9);
        assert_eq!(e.aux, 7);
        assert_eq!(e.ptr, dangling(2));
    }

    #[test]
    fn untargeted_invalidate_clears_any_holder() {
        let idx: HashIndex<u64, u64> = HashIndex::new(1, 1 << 10, None);
        idx.publish(&11, dangling(4), 5, 0);
        idx.invalidate(&11, None);
        assert!(idx.lookup_raw(&11).is_none());
    }

    #[test]
    fn grows_past_the_initial_capacity() {
        let keys = if cfg!(miri) { 300u64 } else { 4_000 };
        let idx: HashIndex<u64, u64> = HashIndex::new(1, 0, None);
        for k in 0..keys {
            idx.publish(&k, dangling(1 + k as usize), k as u32, 0);
        }
        // The minimum table holds 1024 slots per segment; without grows
        // most publishes would have been dropped. Require the vast
        // majority to survive (growth migration may shed a few).
        let mut hits = 0;
        for k in 0..keys {
            if let Some(e) = idx.lookup_raw(&k) {
                assert_eq!(e.gen, k as u32, "entry for {k} mixed up");
                hits += 1;
            }
        }
        assert!(
            hits as f64 >= keys as f64 * 0.9,
            "only {hits}/{keys} entries survived growth"
        );
        assert!(idx.bytes() > 0);
    }

    #[test]
    fn adaptive_occupancy_threshold_grows_earlier() {
        // A 10% threshold must trigger growth far below the static 75%
        // trip-wire: fill every (auto-sized, 4096-slot) segment to
        // roughly a quarter and compare end capacities.
        let keys = 2_000u64;
        let static_idx: HashIndex<u64, u64> = HashIndex::new(1, 0, None);
        let adaptive: HashIndex<u64, u64> =
            HashIndex::new(1, 0, Some(AdaptConfig::new().occ_grow_pct(10)));
        for k in 0..keys {
            static_idx.publish(&k, dangling(1 + k as usize), 0, 0);
            adaptive.publish(&k, dangling(1 + k as usize), 0, 0);
        }
        assert!(
            adaptive.capacity() > static_idx.capacity(),
            "10% threshold should have grown: {} vs {}",
            adaptive.capacity(),
            static_idx.capacity()
        );
    }

    #[test]
    fn probe_signal_grows_below_the_occupancy_threshold() {
        // Drive the sensor directly with long displacements: the table
        // stays empty (occupancy can never trigger), so the windowed
        // mean-probe signal alone must grow the segment — and only after
        // the dwell guard's `dwell + 1` consecutive qualifying windows.
        let cfg = AdaptConfig::new().probe_grow(2).window_ops(16).dwell_windows(1);
        let idx: HashIndex<u64, u64> = HashIndex::new(1, 0, Some(cfg));
        let seg = &idx.segments[0];
        let before = seg.table().mask + 1;
        for _ in 0..16 {
            idx.after_publish(seg, seg.table(), 5);
        }
        assert_eq!(seg.table().mask + 1, before, "dwell guard must hold the first window");
        for _ in 0..16 {
            idx.after_publish(seg, seg.table(), 5);
        }
        assert_eq!(seg.table().mask + 1, before * 2, "second qualifying window grows");
        assert_eq!(idx.probe_grows(), 1, "growth must be attributed to the probe signal");
        // A short-probe window resets the streak: one more qualifying
        // window alone must not grow again.
        for _ in 0..16 {
            idx.after_publish(seg, seg.table(), 0);
        }
        for _ in 0..16 {
            idx.after_publish(seg, seg.table(), 5);
        }
        assert_eq!(seg.table().mask + 1, before * 2, "a reset streak must re-dwell");
    }

    #[test]
    fn byte_accounting_includes_retired_tables() {
        // Drive one grow directly (publish-count triggers depend on the
        // detected segment count, so they are not deterministic here).
        let seg = Segment::new(MIN_SEGMENT_CAP);
        let before = seg.bytes();
        seg.grow();
        let after = seg.bytes();
        // The successor table is twice the size and the predecessor is
        // parked, so the footprint at least doubles — both allocations
        // must show up in the byte accounting.
        assert!(
            after >= before * 2,
            "grow footprint not accounted: {before} -> {after}"
        );
        assert_eq!(seg.table().mask + 1, MIN_SEGMENT_CAP * 2);
    }
}
