//! Software prefetch for pointer-chasing traversals.
//!
//! `search_from` / `skip_chain` issue a prefetch for the successor node as
//! soon as its address is known, so the line transfer overlaps with the
//! current node's key comparison (the "foresight" trick from
//! locality-optimized skiplists; see PAPERS.md). With the truncated-node
//! layout a data node's hot header fits one line, so a single prefetch
//! covers the whole next traversal step.
//!
//! The hint is compiled out:
//! * under the `deterministic` feature — schedules must not depend on
//!   microarchitectural state, and yield-point interleavings make the
//!   latency overlap meaningless anyway;
//! * under Miri — no target intrinsics there;
//! * on targets without a known prefetch instruction (no-op fallback).

/// Best-effort read-prefetch of the cache line holding `*ptr`. Never
/// dereferences; safe to call with any pointer value, including null or
/// dangling (prefetch instructions ignore faulting addresses).
#[inline(always)]
pub(crate) fn prefetch_read<T>(ptr: *const T) {
    #[cfg(all(
        target_arch = "x86_64",
        not(miri),
        not(feature = "deterministic")
    ))]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(ptr as *const i8);
    }
    #[cfg(all(
        target_arch = "aarch64",
        not(miri),
        not(feature = "deterministic")
    ))]
    unsafe {
        std::arch::asm!(
            "prfm pldl1keep, [{p}]",
            p = in(reg) ptr,
            options(nostack, readonly, preserves_flags)
        );
    }
    #[cfg(any(
        not(any(target_arch = "x86_64", target_arch = "aarch64")),
        miri,
        feature = "deterministic"
    ))]
    {
        let _ = ptr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_tolerates_any_pointer() {
        prefetch_read::<u64>(std::ptr::null());
        prefetch_read(&42u64 as *const u64);
        prefetch_read(usize::MAX as *const u64); // non-canonical / faulting
    }
}
