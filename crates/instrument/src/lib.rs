//! Manual access-pattern instrumentation for the layered-skip-graph
//! reproduction.
//!
//! The paper's locality evaluation (Sec. 5, item 2) is *manual code
//! instrumentation*: every shared-node access function records "thread `i`
//! accessed a node allocated by thread `j`". This crate provides exactly
//! that machinery:
//!
//! * [`AccessStats`] — per-thread-pair read and maintenance-CAS matrices
//!   (the heatmaps of Figs. 6–9 and 14–17), plus per-thread scalar counters
//!   (operations, CAS attempts/failures, traversed nodes) for Table 1 and
//!   Fig. 5,
//! * [`ThreadCtx`] — the per-thread recording context passed to every
//!   operation of every structure. When constructed with
//!   [`ThreadCtx::plain`] all recording methods compile to a single
//!   predictable branch; heatmap/metric benches attach stats and optionally
//!   a per-thread [`cache_sim::Hierarchy`],
//! * [`report`] — locality summaries (local vs. remote classification given
//!   a thread → NUMA-node assignment) and CSV heatmap output,
//! * [`time::cycles`] — the cycle timestamps used by the lazy structure's
//!   commission period (the paper uses `350000 * T` cycles).
//!
//! Matching the paper, accesses performed by a thread on the node it is
//! currently inserting are *not* recorded ("otherwise locality would be
//! artificially inflated with no-contention operations that are inherently
//! local"); the data structures simply use non-recording accessors for the
//! in-flight node.

mod ctx;
mod histogram;
mod matrix;
pub mod report;
pub mod time;
mod window;

pub use ctx::{AccessStats, ThreadCtx, ThreadCounterSnapshot};
pub use histogram::LogHistogram;
pub use matrix::AccessMatrix;
pub use window::{CounterWindow, MeanWindow, WindowSample};
