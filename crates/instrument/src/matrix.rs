//! Thread-pair access matrices.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// An `n x n` matrix of counters where cell `(i, j)` is the number of
/// accesses performed by thread `i` on nodes allocated by thread `j`.
///
/// Each row is cache-padded and written only by its own thread, so
/// recording is contention-free (relaxed increments on exclusively-owned
/// cache lines).
#[derive(Debug)]
pub struct AccessMatrix {
    n: usize,
    rows: Vec<CachePadded<Vec<AtomicU64>>>,
}

impl AccessMatrix {
    /// Creates an `n x n` zero matrix.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rows: (0..n)
                .map(|_| CachePadded::new((0..n).map(|_| AtomicU64::new(0)).collect()))
                .collect(),
        }
    }

    /// Matrix dimension (number of threads).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Records one access by `current` on a node owned by `owner`.
    /// Out-of-range ids (e.g. the sentinel owner on a larger machine) are
    /// clamped into the last row/column rather than dropped.
    #[inline]
    pub fn record(&self, current: u16, owner: u16) {
        let i = (current as usize).min(self.n - 1);
        let j = (owner as usize).min(self.n - 1);
        self.rows[i][j].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads cell `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.rows[i][j].load(Ordering::Relaxed)
    }

    /// Sum over a full row (all accesses performed by thread `i`).
    pub fn row_sum(&self, i: usize) -> u64 {
        (0..self.n).map(|j| self.get(i, j)).sum()
    }

    /// Sum of every cell.
    pub fn total(&self) -> u64 {
        (0..self.n).map(|i| self.row_sum(i)).sum()
    }

    /// Splits the total into (local, remote) given each thread's NUMA node.
    ///
    /// # Panics
    ///
    /// Panics if `numa_of.len() < dim()`.
    pub fn split_by_locality(&self, numa_of: &[usize]) -> (u64, u64) {
        assert!(numa_of.len() >= self.n, "assignment too short");
        let mut local = 0;
        let mut remote = 0;
        for i in 0..self.n {
            for j in 0..self.n {
                let v = self.get(i, j);
                if numa_of[i] == numa_of[j] {
                    local += v;
                } else {
                    remote += v;
                }
            }
        }
        (local, remote)
    }

    /// Dumps the matrix as dense CSV (one row per line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&self.get(i, j).to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let m = AccessMatrix::new(4);
        m.record(1, 2);
        m.record(1, 2);
        m.record(3, 0);
        assert_eq!(m.get(1, 2), 2);
        assert_eq!(m.get(3, 0), 1);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.row_sum(1), 2);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn out_of_range_clamps() {
        let m = AccessMatrix::new(2);
        m.record(9, 9);
        assert_eq!(m.get(1, 1), 1);
    }

    #[test]
    fn locality_split() {
        let m = AccessMatrix::new(4);
        // threads 0,1 on node 0; threads 2,3 on node 1.
        let numa = vec![0, 0, 1, 1];
        m.record(0, 1); // local
        m.record(0, 2); // remote
        m.record(2, 3); // local
        m.record(3, 0); // remote
        m.record(3, 0); // remote
        assert_eq!(m.split_by_locality(&numa), (2, 3));
    }

    #[test]
    fn csv_shape() {
        let m = AccessMatrix::new(2);
        m.record(0, 1);
        let csv = m.to_csv();
        assert_eq!(csv, "0,1\n0,0\n");
    }

    #[test]
    fn concurrent_rows_do_not_interfere() {
        let m = std::sync::Arc::new(AccessMatrix::new(8));
        let handles: Vec<_> = (0..8u16)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for k in 0..1000u16 {
                        m.record(t, k % 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.total(), 8000);
        for i in 0..8 {
            assert_eq!(m.row_sum(i), 1000);
        }
    }
}
