//! Windowed event counters for the adaptive control plane.
//!
//! A [`CounterWindow`] packs a flagged-event count and a total count into
//! one relaxed `AtomicU64`, so recording costs a single `fetch_add` on
//! the hot path. The operation that fills the window closes it (exactly
//! one closer per window: only one `fetch_add` can observe the
//! penultimate total) and receives the window's [`WindowSample`]; every
//! other recorder pays nothing but the add. Relaxed ordering is
//! deliberate — the sample is a statistic feeding a hysteresis
//! controller, never a synchronization edge, and a plain `std` atomic
//! adds no yield point under the deterministic scheduler.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// One closed sensor window: how many events landed in it and what
/// fraction carried the flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSample {
    /// Events recorded in the window (at least the configured length;
    /// racing recorders between fill and reset fold into the closing
    /// window rather than being lost).
    pub total: u32,
    /// Flagged events among `total`.
    pub flagged: u32,
}

impl WindowSample {
    /// Flagged share of the window, as an integer percentage (rounded
    /// down; `0` for an empty window).
    pub fn flagged_pct(&self) -> u32 {
        if self.total == 0 {
            return 0;
        }
        (self.flagged as u64 * 100 / self.total as u64) as u32
    }
}

/// A lock-free two-field windowed counter: `flagged << 32 | total` in a
/// single word.
#[derive(Debug, Default)]
pub struct CounterWindow {
    word: AtomicU64,
}

impl CounterWindow {
    pub const fn new() -> Self {
        Self { word: AtomicU64::new(0) }
    }

    /// Records one event; the recorder that fills the window to
    /// `window_ops` closes it and gets the sample. A `window_ops` of
    /// `u32::MAX` in practice never closes — the pinned static lanes.
    pub fn record(&self, flagged: bool, window_ops: u32) -> Option<WindowSample> {
        let prev = self.word.fetch_add(1 | (flagged as u64) << 32, Relaxed);
        if (prev & 0xffff_ffff) as u32 != window_ops.wrapping_sub(1) {
            return None;
        }
        // This recorder saw the penultimate total, so it alone resets the
        // window. Recorders racing between the fill and this swap are
        // absorbed into the swapped totals.
        let closed = self.word.swap(0, Relaxed);
        Some(WindowSample {
            total: (closed & 0xffff_ffff) as u32,
            flagged: (closed >> 32) as u32,
        })
    }

    /// The running totals of the currently open window (telemetry only;
    /// races with recorders).
    pub fn open_window(&self) -> WindowSample {
        let w = self.word.load(Relaxed);
        WindowSample {
            total: (w & 0xffff_ffff) as u32,
            flagged: (w >> 32) as u32,
        }
    }
}

/// A windowed *magnitude* accumulator: `sum << 24 | count`, closing on
/// `window_ops` samples with the window's mean. Used for probe-length
/// sensing in the hash index, where the interesting signal is "how long
/// are probes lately", not a flag ratio. Sums saturating above
/// `2^40 - 1` would wrap into the count field, so each sample is clamped
/// to `2^16` — far above any probe length the index permits.
#[derive(Debug, Default)]
pub struct MeanWindow {
    word: AtomicU64,
}

impl MeanWindow {
    pub const fn new() -> Self {
        Self { word: AtomicU64::new(0) }
    }

    /// Records one magnitude sample; the closer gets the window mean
    /// (rounded down).
    pub fn record(&self, value: u32, window_ops: u32) -> Option<u32> {
        let v = value.min(1 << 16) as u64;
        let prev = self.word.fetch_add(1 | v << 24, Relaxed);
        if (prev & 0xff_ffff) as u32 != window_ops.wrapping_sub(1) {
            return None;
        }
        let closed = self.word.swap(0, Relaxed);
        let count = closed & 0xff_ffff;
        Some(((closed >> 24) / count.max(1)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closes_every_window_with_exact_ratio() {
        let w = CounterWindow::new();
        for round in 0..3 {
            for i in 0..7 {
                let s = w.record(i % 2 == 0, 8);
                assert_eq!(s, None, "round {round} op {i} must not close");
            }
            let s = w.record(false, 8).expect("eighth op closes");
            assert_eq!(s.total, 8);
            assert_eq!(s.flagged, 4);
            assert_eq!(s.flagged_pct(), 50);
        }
    }

    #[test]
    fn pct_rounds_down() {
        let w = CounterWindow::new();
        w.record(true, 3);
        w.record(false, 3);
        let s = w.record(false, 3).unwrap();
        assert_eq!(s.flagged_pct(), 33);
    }

    #[test]
    fn max_window_never_closes() {
        let w = CounterWindow::new();
        for _ in 0..4096 {
            assert_eq!(w.record(true, u32::MAX), None);
        }
        assert_eq!(w.open_window().total, 4096);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let w = CounterWindow::new();
        let closed: Vec<WindowSample> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t: u64| {
                    let w = &w;
                    s.spawn(move || {
                        let mut samples = Vec::new();
                        for i in 0..1000 {
                            if let Some(sample) = w.record((t + i) % 2 == 0, 64) {
                                samples.push(sample);
                            }
                        }
                        samples
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let leftover = w.open_window();
        let total: u64 =
            closed.iter().map(|s| s.total as u64).sum::<u64>() + leftover.total as u64;
        let flagged: u64 =
            closed.iter().map(|s| s.flagged as u64).sum::<u64>() + leftover.flagged as u64;
        assert_eq!(total, 4000, "every record lands in exactly one window");
        assert_eq!(flagged, 2000);
        for s in &closed {
            assert!(s.total >= 64, "windows close at or above the configured length");
        }
    }

    #[test]
    fn mean_window_reports_the_mean() {
        let w = MeanWindow::new();
        assert_eq!(w.record(2, 4), None);
        assert_eq!(w.record(4, 4), None);
        assert_eq!(w.record(6, 4), None);
        assert_eq!(w.record(8, 4), Some(5));
        // Next window is independent.
        assert_eq!(w.record(1, 4), None);
    }
}
