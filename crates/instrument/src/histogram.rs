//! Log-bucketed latency histograms.
//!
//! HDR-style: values are bucketed by (exponent, 1/8th-of-octave), giving
//! ≤ 12.5% relative error per bucket over the full `u64` range with a
//! fixed 512-slot footprint. Single-writer per thread; merge for
//! aggregation.

/// Sub-buckets per octave (power of two).
const SUBS: usize = 8;
const SUB_SHIFT: u32 = 3;
/// Total buckets: 64 octaves x 8 sub-buckets.
const BUCKETS: usize = 64 * SUBS;

/// A fixed-size log-bucketed histogram of `u64` samples.
///
/// # Example
///
/// ```
/// use instrument::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((400..=600).contains(&p50), "{p50}");
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    max: u64,
    min: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize; // exact for tiny values
    }
    let exp = 63 - value.leading_zeros();
    let sub = ((value >> (exp - SUB_SHIFT)) & (SUBS as u64 - 1)) as usize;
    (exp as usize) * SUBS + sub
}

/// Representative (upper-bound) value of a bucket.
fn bucket_value(bucket: usize) -> u64 {
    if bucket < SUBS {
        return bucket as u64;
    }
    let exp = (bucket / SUBS) as u32;
    let sub = (bucket % SUBS) as u64;
    // Upper edge of the sub-bucket.
    (1u64 << exp) + ((sub + 1) << (exp - SUB_SHIFT)) - 1
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate value at percentile `p` (0..=100); 0 when empty. The
    /// result is the upper edge of the bucket containing the rank, so it
    /// overestimates by at most one sub-bucket (≤ 12.5%).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(b).min(self.max);
            }
        }
        self.max
    }

    /// Adds all of `other`'s samples into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        if other.count > 0 {
            self.max = self.max.max(other.max);
            self.min = self.min.min(other.min);
        }
    }

    /// Arithmetic mean estimated from bucket representatives.
    pub fn approx_mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(b, &n)| n as f64 * bucket_value(b) as f64)
            .sum();
        sum / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.approx_mean(), 0.0);
    }

    #[test]
    fn exact_small_values() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 3);
        assert_eq!(h.percentile(100.0), 3);
    }

    #[test]
    fn uniform_percentiles_are_close() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let want = (p / 100.0 * 100_000.0) as u64;
            let got = h.percentile(p);
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.13, "p{p}: got {got}, want ~{want}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
            c.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.min(), c.min());
        for p in [25.0, 50.0, 75.0, 99.0] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }

    proptest! {
        /// Percentile is monotone and bounded by min/max.
        #[test]
        fn percentile_monotone_and_bounded(values in proptest::collection::vec(0u64..1 << 40, 1..300)) {
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut last = 0;
            for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
                let v = h.percentile(p);
                prop_assert!(v >= last, "non-monotone at p{p}");
                prop_assert!(v <= h.max());
                last = v;
            }
            // p100 covers the maximum exactly.
            prop_assert_eq!(h.percentile(100.0), h.max());
        }

        /// Relative bucket error bound: a single sample's p100 is within
        /// 12.5% of the sample.
        #[test]
        fn single_sample_accuracy(v in 8u64..1 << 50) {
            let mut h = LogHistogram::new();
            h.record(v);
            let got = h.percentile(100.0);
            prop_assert!(got >= v, "upper-edge semantics (got {}, v {})", got, v);
            prop_assert!((got - v) as f64 <= v as f64 * 0.125 + 1.0);
        }
    }
}
