//! Locality summaries and heatmap reporting.
//!
//! Reproduces the derived quantities of the paper's Table 1 (local/remote
//! reads per op, local/remote maintenance CAS per op, CAS success rate) and
//! the CSV form of the heatmap figures.

use crate::ctx::AccessStats;

/// The row of Table 1 for one structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalitySummary {
    /// Local shared-node reads per completed operation.
    pub local_reads_per_op: f64,
    /// Remote shared-node reads per completed operation.
    pub remote_reads_per_op: f64,
    /// Local maintenance CAS per completed operation.
    pub local_cas_per_op: f64,
    /// Remote maintenance CAS per completed operation.
    pub remote_cas_per_op: f64,
    /// Fraction of maintenance CAS attempts that succeeded.
    pub cas_success_rate: f64,
    /// Completed operations the averages are over.
    pub ops: u64,
}

impl LocalitySummary {
    /// NUMA locality of reads: local / (local + remote).
    pub fn read_locality(&self) -> f64 {
        let total = self.local_reads_per_op + self.remote_reads_per_op;
        if total == 0.0 {
            1.0
        } else {
            self.local_reads_per_op / total
        }
    }

    /// NUMA locality of maintenance CAS operations.
    pub fn cas_locality(&self) -> f64 {
        let total = self.local_cas_per_op + self.remote_cas_per_op;
        if total == 0.0 {
            1.0
        } else {
            self.local_cas_per_op / total
        }
    }
}

/// Computes the Table 1 row from a stats sink and the thread → NUMA-node
/// assignment the run used.
///
/// # Panics
///
/// Panics if `numa_of` is shorter than the number of instrumented threads.
pub fn locality_summary(stats: &AccessStats, numa_of: &[usize]) -> LocalitySummary {
    let totals = stats.totals();
    let ops = totals.ops.max(1);
    let (lr, rr) = stats.reads().split_by_locality(numa_of);
    let (lc, rc) = stats.cas().split_by_locality(numa_of);
    let success = if totals.cas_attempts == 0 {
        1.0
    } else {
        (totals.cas_attempts - totals.cas_failures) as f64 / totals.cas_attempts as f64
    };
    LocalitySummary {
        local_reads_per_op: lr as f64 / ops as f64,
        remote_reads_per_op: rr as f64 / ops as f64,
        local_cas_per_op: lc as f64 / ops as f64,
        remote_cas_per_op: rc as f64 / ops as f64,
        cas_success_rate: success,
        ops: totals.ops,
    }
}

/// Average shared nodes visited per search (Fig. 5).
pub fn nodes_per_search(stats: &AccessStats) -> f64 {
    let t = stats.totals();
    if t.searches == 0 {
        0.0
    } else {
        t.traversed as f64 / t.searches as f64
    }
}

/// Reduction in remote accesses grouped by NUMA distance: returns, for each
/// distinct (node_i, node_j) pair, the total access count. Used to verify
/// the paper's qualitative claim that larger NUMA distance sees the larger
/// reduction.
pub fn accesses_by_node_pair(
    matrix: &crate::AccessMatrix,
    numa_of: &[usize],
    num_nodes: usize,
) -> Vec<Vec<u64>> {
    let mut out = vec![vec![0u64; num_nodes]; num_nodes];
    for i in 0..matrix.dim() {
        for j in 0..matrix.dim() {
            out[numa_of[i]][numa_of[j]] += matrix.get(i, j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ThreadCtx;

    #[test]
    fn summary_math() {
        let stats = AccessStats::new(2);
        let numa = vec![0, 1];
        let c0 = ThreadCtx::recording(0, stats.clone());
        let c1 = ThreadCtx::recording(1, stats.clone());
        // Thread 0: 2 ops, reads 3 local + 1 remote, 1 successful local CAS.
        c0.record_op();
        c0.record_op();
        c0.record_read(0, 0);
        c0.record_read(0, 0);
        c0.record_read(0, 0);
        c0.record_read(1, 0);
        c0.record_cas(0, 0, true);
        // Thread 1: 2 ops, 1 failed remote CAS.
        c1.record_op();
        c1.record_op();
        c1.record_cas(0, 0, false);
        let s = locality_summary(&stats, &numa);
        assert_eq!(s.ops, 4);
        assert!((s.local_reads_per_op - 0.75).abs() < 1e-9);
        assert!((s.remote_reads_per_op - 0.25).abs() < 1e-9);
        assert!((s.local_cas_per_op - 0.25).abs() < 1e-9);
        assert!((s.remote_cas_per_op - 0.25).abs() < 1e-9);
        assert!((s.cas_success_rate - 0.5).abs() < 1e-9);
        assert!((s.read_locality() - 0.75).abs() < 1e-9);
        assert!((s.cas_locality() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn nodes_per_search_math() {
        let stats = AccessStats::new(1);
        let c = ThreadCtx::recording(0, stats.clone());
        c.record_search(10);
        c.record_search(20);
        assert!((nodes_per_search(&stats) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn node_pair_grouping() {
        let stats = AccessStats::new(4);
        let numa = vec![0, 0, 1, 1];
        let c0 = ThreadCtx::recording(0, stats.clone());
        c0.record_read(3, 0); // node0 -> node1
        c0.record_read(1, 0); // node0 -> node0
        let grouped = accesses_by_node_pair(stats.reads(), &numa, 2);
        assert_eq!(grouped[0][1], 1);
        assert_eq!(grouped[0][0], 1);
        assert_eq!(grouped[1][0], 0);
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let stats = AccessStats::new(2);
        let s = locality_summary(&stats, &[0, 1]);
        assert_eq!(s.cas_success_rate, 1.0);
        assert_eq!(s.read_locality(), 1.0);
        assert_eq!(nodes_per_search(&stats), 0.0);
    }
}

/// Renders a matrix as a terminal heatmap: one character per cell, shaded
/// by magnitude relative to the matrix maximum (log scale, since CAS
/// counts span orders of magnitude). For matrices larger than `max_dim`,
/// cells are aggregated into blocks first so the render stays readable.
pub fn render_ascii_heatmap(matrix: &crate::AccessMatrix, max_dim: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let n = matrix.dim();
    let max_dim = max_dim.max(1);
    let block = n.div_ceil(max_dim);
    let dim = n.div_ceil(block);
    // Aggregate into blocks.
    let mut cells = vec![vec![0u64; dim]; dim];
    for i in 0..n {
        for j in 0..n {
            cells[i / block][j / block] += matrix.get(i, j);
        }
    }
    let max = cells
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    if max == 0 {
        out.push_str("(empty heatmap)\n");
        return out;
    }
    let log_max = (max as f64).ln();
    for row in &cells {
        for &v in row {
            let shade = if v == 0 {
                0
            } else {
                // Log-scaled into 1..=9 so any activity is visible.
                let frac = (v as f64).ln().max(0.0) / log_max.max(1e-9);
                1 + (frac * (SHADES.len() - 2) as f64).round() as usize
            };
            out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::AccessMatrix;

    #[test]
    fn empty_matrix_renders_placeholder() {
        let m = AccessMatrix::new(4);
        assert!(render_ascii_heatmap(&m, 8).contains("empty"));
    }

    #[test]
    fn diagonal_pattern_is_visible() {
        let m = AccessMatrix::new(4);
        for i in 0..4u16 {
            for _ in 0..1000 {
                m.record(i, i);
            }
            m.record(i, (i + 1) % 4); // faint off-diagonal
        }
        let art = render_ascii_heatmap(&m, 4);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            let diag = row.as_bytes()[i];
            assert_eq!(diag, b'@', "diagonal cell {i} must be darkest: {art}");
        }
    }

    #[test]
    fn large_matrices_are_blocked() {
        let m = AccessMatrix::new(96);
        for i in 0..96u16 {
            m.record(i, i);
        }
        let art = render_ascii_heatmap(&m, 24);
        assert_eq!(art.lines().count(), 24);
        assert!(art.lines().all(|l| l.len() == 24));
    }
}
