//! Cycle timestamps for the lazy structure's commission period.
//!
//! The paper expresses the commission period in cycles (`350000 * T`). On
//! x86-64 we read the TSC directly; elsewhere we fall back to a monotonic
//! nanosecond clock (close enough on ~GHz machines — the commission period
//! is a heuristic, not a correctness parameter).

use std::time::Instant;

#[cfg(not(target_arch = "x86_64"))]
use std::sync::OnceLock;

/// Reads a monotonically-increasing timestamp in (approximately) CPU cycles.
#[inline]
pub fn cycles() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Measures the approximate TSC frequency in cycles per second by spinning
/// for `window` wall time. Used only for pretty-printing commission periods.
pub fn estimate_cycles_per_second(window: std::time::Duration) -> f64 {
    let t0 = Instant::now();
    let c0 = cycles();
    while t0.elapsed() < window {
        std::hint::spin_loop();
    }
    let dc = cycles().wrapping_sub(c0) as f64;
    dc / t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_is_monotonic_enough() {
        let a = cycles();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = cycles();
        assert!(b >= a, "tsc went backwards: {a} -> {b}");
    }

    #[test]
    fn frequency_estimate_is_positive() {
        let f = estimate_cycles_per_second(std::time::Duration::from_millis(5));
        assert!(f > 0.0);
    }
}
