//! Per-thread recording context and the shared statistics sink.

use crate::histogram::LogHistogram;
use crate::matrix::AccessMatrix;
use cache_sim::{Hierarchy, MissCounts};
use crossbeam_utils::CachePadded;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-thread scalar counters (single-writer; relaxed).
#[derive(Debug, Default)]
struct ThreadCounters {
    ops: AtomicU64,
    cas_attempts: AtomicU64,
    cas_failures: AtomicU64,
    traversed: AtomicU64,
    searches: AtomicU64,
    batches: AtomicU64,
    batched_ops: AtomicU64,
    hinted_searches: AtomicU64,
    hinted_traversed: AtomicU64,
    retired: AtomicU64,
    recycled: AtomicU64,
    epoch_advances: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
    index_stale: AtomicU64,
    log_appends: AtomicU64,
    log_lag_sum: AtomicU64,
    replay_batches: AtomicU64,
    replayed_ops: AtomicU64,
    anchor_hits: AtomicU64,
    anchor_groups: AtomicU64,
    grouped_ops: AtomicU64,
    bulk_blocks: AtomicU64,
    bulk_entries: AtomicU64,
    collapsed_ops: AtomicU64,
}

/// A read-only snapshot of one thread's scalar counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadCounterSnapshot {
    /// Completed high-level operations (insert/remove/contains).
    pub ops: u64,
    /// Maintenance CAS attempts (excluding initialization of the thread's
    /// own in-flight node).
    pub cas_attempts: u64,
    /// Failed maintenance CAS attempts.
    pub cas_failures: u64,
    /// Shared nodes visited by searches.
    pub traversed: u64,
    /// Number of shared-structure searches performed.
    pub searches: u64,
    /// Combined batches this thread drained as the combiner.
    pub batches: u64,
    /// Operations executed inside those batches (own + other threads').
    pub batched_ops: u64,
    /// Searches that resumed from a sorted-run hint (subset of `searches`).
    pub hinted_searches: u64,
    /// Shared nodes visited by hinted searches (subset of `traversed`);
    /// `hinted_traversed / hinted_searches` is the mean hint-hit distance.
    pub hinted_traversed: u64,
    /// Fully-unlinked nodes this thread retired onto its limbo list.
    pub retired: u64,
    /// Reclaimed slots this thread returned to arena free lists.
    pub recycled: u64,
    /// Global-epoch advancements this thread's quiesce pass won.
    pub epoch_advances: u64,
    /// Point reads answered by the shared hash index (hit or
    /// authoritative absent) without a skip-graph descent.
    pub index_hits: u64,
    /// Index consultations that found no usable entry (key not indexed,
    /// or a signature collision) and fell back to the descent.
    pub index_misses: u64,
    /// Index entries rejected as stale (generation bumped, node marked,
    /// or anchor frozen) before falling back to the descent.
    pub index_stale: u64,
    /// Operations appended to a replication operation log.
    pub log_appends: u64,
    /// Sum over appends of the log's observed lag (head minus the
    /// slowest replica's completion tail) at append time;
    /// `log_lag_sum / log_appends` is the mean backlog a write joins.
    pub log_lag_sum: u64,
    /// Replica replay batches this thread drained (one per lease-held
    /// pass over a log's pending suffix).
    pub replay_batches: u64,
    /// Operations applied inside those replay batches.
    pub replayed_ops: u64,
    /// Point operations served by a validated anchor-cache entry (one
    /// cached block reference answered for a key in its range, no
    /// descent).
    pub anchor_hits: u64,
    /// Anchor groups formed by batched blocked runs (consecutive sorted
    /// ops resolved to one covering anchor).
    pub anchor_groups: u64,
    /// Operations executed inside those groups;
    /// `grouped_ops / anchor_groups` is the mean in-block apply width.
    pub grouped_ops: u64,
    /// Fresh blocks published by combiner bulk fills (one install CAS per
    /// chain, `bulk_blocks` blocks total).
    pub bulk_blocks: u64,
    /// Entries that entered the map through those bulk-filled blocks.
    pub bulk_entries: u64,
    /// Replay operations elided by per-key batch compaction (last write
    /// wins inside one drained replay batch).
    pub collapsed_ops: u64,
}

/// Shared statistics sink for one experiment: thread-pair matrices plus
/// per-thread counters. Create one per structure-under-test, hand an
/// [`ThreadCtx::recording`] context to each worker thread, then query the
/// aggregate after the run.
#[derive(Debug)]
pub struct AccessStats {
    reads: AccessMatrix,
    cas: AccessMatrix,
    counters: Vec<CachePadded<ThreadCounters>>,
    /// Batch-size distribution across all combiners (one sample per
    /// drained batch; updated once per batch, so the lock is cold).
    batch_sizes: Mutex<LogHistogram>,
}

impl AccessStats {
    /// Creates a sink for `threads` worker threads.
    pub fn new(threads: usize) -> Arc<Self> {
        assert!(threads > 0);
        Arc::new(Self {
            reads: AccessMatrix::new(threads),
            cas: AccessMatrix::new(threads),
            counters: (0..threads).map(|_| CachePadded::default()).collect(),
            batch_sizes: Mutex::new(LogHistogram::new()),
        })
    }

    /// The read heatmap (Figs. 14–17).
    pub fn reads(&self) -> &AccessMatrix {
        &self.reads
    }

    /// The maintenance-CAS heatmap (Figs. 6–9).
    pub fn cas(&self) -> &AccessMatrix {
        &self.cas
    }

    /// Snapshot of one thread's counters.
    pub fn thread(&self, id: usize) -> ThreadCounterSnapshot {
        let c = &self.counters[id];
        ThreadCounterSnapshot {
            ops: c.ops.load(Ordering::Relaxed),
            cas_attempts: c.cas_attempts.load(Ordering::Relaxed),
            cas_failures: c.cas_failures.load(Ordering::Relaxed),
            traversed: c.traversed.load(Ordering::Relaxed),
            searches: c.searches.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_ops: c.batched_ops.load(Ordering::Relaxed),
            hinted_searches: c.hinted_searches.load(Ordering::Relaxed),
            hinted_traversed: c.hinted_traversed.load(Ordering::Relaxed),
            retired: c.retired.load(Ordering::Relaxed),
            recycled: c.recycled.load(Ordering::Relaxed),
            epoch_advances: c.epoch_advances.load(Ordering::Relaxed),
            index_hits: c.index_hits.load(Ordering::Relaxed),
            index_misses: c.index_misses.load(Ordering::Relaxed),
            index_stale: c.index_stale.load(Ordering::Relaxed),
            log_appends: c.log_appends.load(Ordering::Relaxed),
            log_lag_sum: c.log_lag_sum.load(Ordering::Relaxed),
            replay_batches: c.replay_batches.load(Ordering::Relaxed),
            replayed_ops: c.replayed_ops.load(Ordering::Relaxed),
            anchor_hits: c.anchor_hits.load(Ordering::Relaxed),
            anchor_groups: c.anchor_groups.load(Ordering::Relaxed),
            grouped_ops: c.grouped_ops.load(Ordering::Relaxed),
            bulk_blocks: c.bulk_blocks.load(Ordering::Relaxed),
            bulk_entries: c.bulk_entries.load(Ordering::Relaxed),
            collapsed_ops: c.collapsed_ops.load(Ordering::Relaxed),
        }
    }

    /// A copy of the combined batch-size histogram (one sample per batch a
    /// combiner drained).
    pub fn batch_size_histogram(&self) -> LogHistogram {
        self.batch_sizes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Sum of all thread snapshots.
    pub fn totals(&self) -> ThreadCounterSnapshot {
        let mut t = ThreadCounterSnapshot::default();
        for id in 0..self.counters.len() {
            let s = self.thread(id);
            t.ops += s.ops;
            t.cas_attempts += s.cas_attempts;
            t.cas_failures += s.cas_failures;
            t.traversed += s.traversed;
            t.searches += s.searches;
            t.batches += s.batches;
            t.batched_ops += s.batched_ops;
            t.hinted_searches += s.hinted_searches;
            t.hinted_traversed += s.hinted_traversed;
            t.retired += s.retired;
            t.recycled += s.recycled;
            t.epoch_advances += s.epoch_advances;
            t.index_hits += s.index_hits;
            t.index_misses += s.index_misses;
            t.index_stale += s.index_stale;
            t.log_appends += s.log_appends;
            t.log_lag_sum += s.log_lag_sum;
            t.replay_batches += s.replay_batches;
            t.replayed_ops += s.replayed_ops;
            t.anchor_hits += s.anchor_hits;
            t.anchor_groups += s.anchor_groups;
            t.grouped_ops += s.grouped_ops;
            t.bulk_blocks += s.bulk_blocks;
            t.bulk_entries += s.bulk_entries;
            t.collapsed_ops += s.collapsed_ops;
        }
        t
    }

    /// Number of threads this sink was sized for.
    pub fn threads(&self) -> usize {
        self.counters.len()
    }
}

/// The per-thread context threaded through every data-structure operation.
///
/// `ThreadCtx` carries the dense benchmark thread id (which doubles as the
/// NUMA-ownership tag for nodes the thread allocates) and the optional
/// recording sinks. All `record_*` methods are no-ops (a single predictable
/// branch) when constructed with [`ThreadCtx::plain`].
#[derive(Debug)]
pub struct ThreadCtx {
    id: u16,
    stats: Option<Arc<AccessStats>>,
    cache: Option<RefCell<Hierarchy>>,
    chaos: Option<Chaos>,
}

/// Schedule-fuzzing state: yields the OS thread with probability
/// `1/one_in` at every instrumented shared-memory access, multiplying the
/// interleavings an oversubscribed stress test explores.
#[derive(Debug)]
struct Chaos {
    state: Cell<u64>,
    one_in: u32,
}

impl Chaos {
    #[inline]
    fn maybe_yield(&self) {
        let mut x = self.state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state.set(x);
        if x.is_multiple_of(self.one_in as u64) {
            std::thread::yield_now();
        }
    }
}

impl ThreadCtx {
    /// A non-recording context for thread `id` (throughput runs).
    pub fn plain(id: u16) -> Self {
        Self {
            id,
            stats: None,
            cache: None,
            chaos: None,
        }
    }

    /// A recording context feeding `stats` (heatmaps / Table 1).
    pub fn recording(id: u16, stats: Arc<AccessStats>) -> Self {
        Self {
            id,
            stats: Some(stats),
            cache: None,
            chaos: None,
        }
    }

    /// A sibling context with the same thread id and stats sink, for a
    /// structure that needs several handles per thread (e.g. one per
    /// replica): shared-node traffic from every sibling lands in the same
    /// per-thread counters. The cache simulation and chaos state are
    /// per-context (`RefCell`/`Cell`) and deliberately not forked.
    pub fn fork(&self) -> Self {
        Self {
            id: self.id,
            stats: self.stats.clone(),
            cache: None,
            chaos: None,
        }
    }

    /// A schedule-fuzzing context: yields the OS thread with probability
    /// `1/one_in` at every shared-node access, forcing preemption at the
    /// exact linearization-sensitive points. For stress tests.
    ///
    /// # Panics
    ///
    /// Panics if `one_in` is zero.
    pub fn chaos(id: u16, seed: u64, one_in: u32) -> Self {
        assert!(one_in > 0);
        Self {
            id,
            stats: None,
            cache: None,
            chaos: Some(Chaos {
                state: Cell::new(seed | 1),
                one_in,
            }),
        }
    }

    /// Attaches a per-thread cache-hierarchy simulation (Table 2).
    pub fn with_cache_sim(mut self, hierarchy: Hierarchy) -> Self {
        self.cache = Some(RefCell::new(hierarchy));
        self
    }

    /// The dense benchmark thread id.
    #[inline]
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Records a read of a shared-node word owned by thread `owner` at
    /// address `addr`.
    #[inline]
    pub fn record_read(&self, owner: u16, addr: usize) {
        if let Some(s) = &self.stats {
            s.reads.record(self.id, owner);
        }
        if let Some(c) = &self.cache {
            c.borrow_mut().access(addr as u64, false);
        }
        if let Some(c) = &self.chaos {
            c.maybe_yield();
        }
    }

    /// Records a maintenance CAS on a word owned by `owner`.
    #[inline]
    pub fn record_cas(&self, owner: u16, addr: usize, success: bool) {
        if let Some(s) = &self.stats {
            s.cas.record(self.id, owner);
            let c = &s.counters[self.id as usize];
            c.cas_attempts.fetch_add(1, Ordering::Relaxed);
            if !success {
                c.cas_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(c) = &self.cache {
            c.borrow_mut().access(addr as u64, true);
        }
        if let Some(c) = &self.chaos {
            c.maybe_yield();
        }
    }

    /// Records the completion of one high-level operation.
    #[inline]
    pub fn record_op(&self) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .ops
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a finished shared-structure search that visited `nodes`
    /// shared nodes (Fig. 5).
    #[inline]
    pub fn record_search(&self, nodes: u64) {
        if let Some(s) = &self.stats {
            let c = &s.counters[self.id as usize];
            c.searches.fetch_add(1, Ordering::Relaxed);
            c.traversed.fetch_add(nodes, Ordering::Relaxed);
        }
    }

    /// Records a finished *hinted* search (one that resumed from a
    /// sorted-run predecessor frontier instead of the head or a local-map
    /// jump). Callers record the search itself via
    /// [`ThreadCtx::record_search`] as usual; this adds the hint-distance
    /// attribution on top.
    #[inline]
    pub fn record_hinted_search(&self, nodes: u64) {
        if let Some(s) = &self.stats {
            let c = &s.counters[self.id as usize];
            c.hinted_searches.fetch_add(1, Ordering::Relaxed);
            c.hinted_traversed.fetch_add(nodes, Ordering::Relaxed);
        }
    }

    /// Records one combined batch of `ops` operations drained and executed
    /// by this thread acting as a socket's combiner.
    #[inline]
    pub fn record_batch(&self, ops: u64) {
        if let Some(s) = &self.stats {
            let c = &s.counters[self.id as usize];
            c.batches.fetch_add(1, Ordering::Relaxed);
            c.batched_ops.fetch_add(ops, Ordering::Relaxed);
            s.batch_sizes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(ops);
        }
    }

    /// Records the retirement of one fully-unlinked node onto this
    /// thread's limbo list.
    #[inline]
    pub fn record_retire(&self) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .retired
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `slots` reclaimed slots returned to arena free lists by this
    /// thread's collect pass.
    #[inline]
    pub fn record_recycle(&self, slots: u64) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .recycled
                .fetch_add(slots, Ordering::Relaxed);
        }
    }

    /// Records one successful global-epoch advancement won by this thread.
    #[inline]
    pub fn record_epoch_advance(&self) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .epoch_advances
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a point read answered by the shared hash index (a hit or
    /// an authoritative absent — either way no descent was paid).
    #[inline]
    pub fn record_index_hit(&self) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .index_hits
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an index consultation that found no usable entry.
    #[inline]
    pub fn record_index_miss(&self) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .index_misses
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an index entry rejected as stale during validation.
    #[inline]
    pub fn record_index_stale(&self) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .index_stale
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an append to a replication operation log together with the
    /// lag (head minus the slowest replica's tail) the write joined.
    #[inline]
    pub fn record_log_append(&self, lag: u64) {
        if let Some(s) = &self.stats {
            let c = &s.counters[self.id as usize];
            c.log_appends.fetch_add(1, Ordering::Relaxed);
            c.log_lag_sum.fetch_add(lag, Ordering::Relaxed);
        }
    }

    /// Records a replica replay batch of `ops` operations drained under a
    /// replay lease.
    #[inline]
    pub fn record_replay_batch(&self, ops: u64) {
        if let Some(s) = &self.stats {
            let c = &s.counters[self.id as usize];
            c.replay_batches.fetch_add(1, Ordering::Relaxed);
            c.replayed_ops.fetch_add(ops, Ordering::Relaxed);
        }
    }

    /// Records a point operation served by a validated anchor-cache entry
    /// (a cached block reference covered the key; no descent was paid).
    #[inline]
    pub fn record_anchor_hit(&self) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .anchor_hits
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one anchor group of `ops` consecutive sorted operations a
    /// batched blocked run resolved to a single covering anchor.
    #[inline]
    pub fn record_anchor_group(&self, ops: u64) {
        if let Some(s) = &self.stats {
            let c = &s.counters[self.id as usize];
            c.anchor_groups.fetch_add(1, Ordering::Relaxed);
            c.grouped_ops.fetch_add(ops, Ordering::Relaxed);
        }
    }

    /// Records one bulk block fill: `blocks` fresh blocks published in a
    /// single install holding `entries` entries.
    #[inline]
    pub fn record_bulk_fill(&self, blocks: u64, entries: u64) {
        if let Some(s) = &self.stats {
            let c = &s.counters[self.id as usize];
            c.bulk_blocks.fetch_add(blocks, Ordering::Relaxed);
            c.bulk_entries.fetch_add(entries, Ordering::Relaxed);
        }
    }

    /// Records `ops` replay operations elided by per-key compaction of
    /// one drained replay batch.
    #[inline]
    pub fn record_replay_collapsed(&self, ops: u64) {
        if let Some(s) = &self.stats {
            s.counters[self.id as usize]
                .collapsed_ops
                .fetch_add(ops, Ordering::Relaxed);
        }
    }

    /// True when any recording sink is attached (used by structures to skip
    /// assembling record arguments on the fast path).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.stats.is_some() || self.cache.is_some() || self.chaos.is_some()
    }

    /// The cache-simulation counters accumulated by this thread, if a
    /// hierarchy was attached.
    pub fn cache_counts(&self) -> Option<MissCounts> {
        self.cache.as_ref().map(|c| c.borrow().miss_counts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ctx_records_nothing_and_does_not_crash() {
        let ctx = ThreadCtx::plain(3);
        ctx.record_read(1, 0x10);
        ctx.record_cas(1, 0x10, false);
        ctx.record_op();
        ctx.record_search(5);
        ctx.record_hinted_search(2);
        ctx.record_batch(8);
        ctx.record_retire();
        ctx.record_recycle(4);
        ctx.record_epoch_advance();
        ctx.record_index_hit();
        ctx.record_index_miss();
        ctx.record_index_stale();
        ctx.record_log_append(7);
        ctx.record_replay_batch(5);
        ctx.record_anchor_hit();
        ctx.record_anchor_group(4);
        ctx.record_bulk_fill(2, 12);
        ctx.record_replay_collapsed(3);
        assert_eq!(ctx.id(), 3);
        assert!(!ctx.is_recording());
        assert!(ctx.cache_counts().is_none());
    }

    #[test]
    fn recording_ctx_feeds_matrices_and_counters() {
        let stats = AccessStats::new(4);
        let ctx = ThreadCtx::recording(1, stats.clone());
        ctx.record_read(2, 0x40);
        ctx.record_cas(3, 0x80, true);
        ctx.record_cas(3, 0x80, false);
        ctx.record_op();
        ctx.record_search(7);
        assert_eq!(stats.reads().get(1, 2), 1);
        assert_eq!(stats.cas().get(1, 3), 2);
        let t = stats.thread(1);
        assert_eq!(t.ops, 1);
        assert_eq!(t.cas_attempts, 2);
        assert_eq!(t.cas_failures, 1);
        assert_eq!(t.traversed, 7);
        assert_eq!(t.searches, 1);
        assert_eq!(stats.totals().cas_attempts, 2);
    }

    #[test]
    fn combiner_counters_and_batch_histogram() {
        let stats = AccessStats::new(2);
        let ctx = ThreadCtx::recording(0, stats.clone());
        ctx.record_batch(8);
        ctx.record_batch(64);
        ctx.record_hinted_search(3);
        ctx.record_hinted_search(5);
        let t = stats.thread(0);
        assert_eq!(t.batches, 2);
        assert_eq!(t.batched_ops, 72);
        assert_eq!(t.hinted_searches, 2);
        assert_eq!(t.hinted_traversed, 8);
        assert_eq!(stats.totals().batched_ops, 72);
        let h = stats.batch_size_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 64);
        assert_eq!(h.min(), 8);
    }

    #[test]
    fn reclamation_counters_accumulate() {
        let stats = AccessStats::new(2);
        let ctx = ThreadCtx::recording(1, stats.clone());
        ctx.record_retire();
        ctx.record_retire();
        ctx.record_recycle(3);
        ctx.record_epoch_advance();
        let t = stats.thread(1);
        assert_eq!(t.retired, 2);
        assert_eq!(t.recycled, 3);
        assert_eq!(t.epoch_advances, 1);
        let totals = stats.totals();
        assert_eq!(totals.retired, 2);
        assert_eq!(totals.recycled, 3);
        assert_eq!(totals.epoch_advances, 1);
    }

    #[test]
    fn index_counters_accumulate() {
        let stats = AccessStats::new(2);
        let ctx = ThreadCtx::recording(0, stats.clone());
        ctx.record_index_hit();
        ctx.record_index_hit();
        ctx.record_index_miss();
        ctx.record_index_stale();
        let t = stats.thread(0);
        assert_eq!(t.index_hits, 2);
        assert_eq!(t.index_misses, 1);
        assert_eq!(t.index_stale, 1);
        let totals = stats.totals();
        assert_eq!(totals.index_hits, 2);
        assert_eq!(totals.index_misses, 1);
        assert_eq!(totals.index_stale, 1);
    }

    #[test]
    fn replication_counters_accumulate() {
        let stats = AccessStats::new(2);
        let a = ThreadCtx::recording(0, stats.clone());
        let b = ThreadCtx::recording(1, stats.clone());
        a.record_log_append(3);
        a.record_log_append(5);
        b.record_replay_batch(4);
        b.record_replay_batch(0);
        let t0 = stats.thread(0);
        assert_eq!(t0.log_appends, 2);
        assert_eq!(t0.log_lag_sum, 8);
        let t1 = stats.thread(1);
        assert_eq!(t1.replay_batches, 2);
        assert_eq!(t1.replayed_ops, 4);
        let totals = stats.totals();
        assert_eq!(totals.log_appends, 2);
        assert_eq!(totals.log_lag_sum, 8);
        assert_eq!(totals.replay_batches, 2);
        assert_eq!(totals.replayed_ops, 4);
    }

    #[test]
    fn anchor_and_compaction_counters_accumulate() {
        let stats = AccessStats::new(2);
        let ctx = ThreadCtx::recording(1, stats.clone());
        ctx.record_anchor_hit();
        ctx.record_anchor_hit();
        ctx.record_anchor_group(3);
        ctx.record_anchor_group(5);
        ctx.record_bulk_fill(2, 12);
        ctx.record_replay_collapsed(7);
        let t = stats.thread(1);
        assert_eq!(t.anchor_hits, 2);
        assert_eq!(t.anchor_groups, 2);
        assert_eq!(t.grouped_ops, 8);
        assert_eq!(t.bulk_blocks, 2);
        assert_eq!(t.bulk_entries, 12);
        assert_eq!(t.collapsed_ops, 7);
        let totals = stats.totals();
        assert_eq!(totals.anchor_hits, 2);
        assert_eq!(totals.grouped_ops, 8);
        assert_eq!(totals.bulk_entries, 12);
        assert_eq!(totals.collapsed_ops, 7);
    }

    #[test]
    fn chaos_ctx_is_recording_and_does_not_crash() {
        let ctx = ThreadCtx::chaos(2, 42, 2);
        assert!(ctx.is_recording());
        for i in 0..100 {
            ctx.record_read(0, i);
            ctx.record_cas(0, i, i % 2 == 0);
        }
        assert_eq!(ctx.id(), 2);
        assert!(ctx.cache_counts().is_none());
    }

    #[test]
    fn cache_sim_attachment_counts_accesses() {
        let ctx = ThreadCtx::plain(0).with_cache_sim(Hierarchy::xeon_8275cl());
        ctx.record_read(0, 0x1000);
        ctx.record_read(0, 0x1000);
        ctx.record_cas(0, 0x2000, true);
        let m = ctx.cache_counts().unwrap();
        assert_eq!(m.accesses, 3);
        assert_eq!(m.l1, 2); // two distinct lines, each cold-missed once
    }
}
