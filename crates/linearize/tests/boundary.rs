//! The `MAX_EVENTS` memoization boundary: the checker's failure memo keys
//! on a `u64` done-bitmask, so histories are capped at exactly 64 events.
//! A 64-event history must be checked normally; 65 events must be rejected
//! up front with a clear message, never silently truncated.

use linearize::{check_history, check_history_from, Event, Op, MAX_EVENTS};

fn seq(op: Op, result: bool, t: u64) -> Event {
    Event {
        op,
        result,
        start: 2 * t,
        end: 2 * t + 1,
    }
}

/// `n` sequential events alternating successful insert/remove — always
/// linearizable starting from the empty set.
fn alternating(n: usize) -> Vec<Event> {
    (0..n)
        .map(|i| {
            let op = if i % 2 == 0 { Op::Insert } else { Op::Remove };
            seq(op, true, i as u64)
        })
        .collect()
}

#[test]
fn exactly_max_events_is_checked_not_rejected() {
    assert_eq!(MAX_EVENTS, 64, "memo bitmask is a u64");
    let ok = alternating(MAX_EVENTS);
    check_history(&ok).expect("64 valid events must pass");

    // And a 64-event history with a genuine violation must still be
    // *checked* (and fail on the merits, not on length).
    let mut bad = alternating(MAX_EVENTS);
    bad[MAX_EVENTS - 1].result = false; // final remove "fails" while present
    let err = check_history(&bad).expect_err("violation at the boundary must be found");
    assert!(
        !err.contains("history too long"),
        "64 events must not trip the length guard: {err}"
    );
}

#[test]
fn one_past_the_boundary_is_rejected_with_a_clear_error() {
    let too_long = alternating(MAX_EVENTS + 1);
    let err = check_history(&too_long).expect_err("65 events must be rejected");
    assert!(err.contains("history too long"), "unexpected error: {err}");
    assert!(err.contains("65"), "error should name the offending length: {err}");
}

#[test]
fn boundary_holds_for_initially_present_histories_too() {
    // Start from {present}: remove first, then insert, alternating.
    let ok: Vec<Event> = (0..MAX_EVENTS)
        .map(|i| {
            let op = if i % 2 == 0 { Op::Remove } else { Op::Insert };
            seq(op, true, i as u64)
        })
        .collect();
    check_history_from(&ok, true).expect("64 valid events from a present key must pass");
    let long: Vec<Event> = (0..MAX_EVENTS + 1)
        .map(|i| seq(Op::Contains, true, i as u64))
        .collect();
    assert!(check_history_from(&long, true).is_err());
}

#[test]
fn backtracking_at_the_boundary_terminates() {
    // Exactly 64 events where the final 8 fully overlap: 56 sequential
    // alternating insert/remove (key ends absent), then 8 concurrent
    // contains. One contains=true among them is impossible (nothing ever
    // re-inserts), so the checker must exhaust the overlap window — with
    // the (done-mask, present) failure memo that's cheap even at the full
    // 64-event cap.
    let mut events = alternating(MAX_EVENTS - 8);
    for i in 0..8 {
        events.push(Event {
            op: Op::Contains,
            result: i == 0, // one impossible contains=true among 7 false
            start: 1000,
            end: 2000,
        });
    }
    assert_eq!(events.len(), MAX_EVENTS);
    let err = check_history(&events).expect_err("contains=true on an absent key");
    assert!(!err.contains("history too long"), "{err}");

    // Flip it to all-false: linearizable, still at the full 64 events.
    events[MAX_EVENTS - 8].result = false;
    check_history(&events).expect("all-false contains must linearize");
}
