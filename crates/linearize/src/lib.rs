//! A linearizability checker for concurrent **set** histories.
//!
//! The structures in this workspace implement linearizable set semantics
//! per key: `insert` succeeds iff the key was absent, `remove` succeeds
//! iff it was present, `contains` reports presence. Because keys are
//! independent, a full-map history is linearizable iff each per-key
//! sub-history is — so the checker works on one key's [`Event`]s.
//!
//! The algorithm is Wing & Gong's exhaustive search: repeatedly pick a
//! *minimal* pending operation (one that no other pending operation
//! strictly precedes in real time), check that its observed result matches
//! the sequential specification from the current abstract state, and
//! recurse; memoization on the set of linearized operations (so histories
//! are capped at [`MAX_EVENTS`] events) keeps it tractable.
//!
//! # Example
//!
//! ```
//! use linearize::{check_history, Event, Op};
//!
//! // insert(true) completes before remove(true): linearizable.
//! let h = [
//!     Event { op: Op::Insert, result: true, start: 0, end: 10 },
//!     Event { op: Op::Remove, result: true, start: 20, end: 30 },
//! ];
//! assert!(check_history(&h).is_ok());
//!
//! // Two non-overlapping successful inserts: NOT linearizable.
//! let h = [
//!     Event { op: Op::Insert, result: true, start: 0, end: 10 },
//!     Event { op: Op::Insert, result: true, start: 20, end: 30 },
//! ];
//! assert!(check_history(&h).is_err());
//! ```

use std::collections::HashSet;

/// Maximum events per checked history (memoization uses a `u64` bitmask).
pub const MAX_EVENTS: usize = 64;

/// The per-key operations of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Insert the key; succeeds iff absent.
    Insert,
    /// Remove the key; succeeds iff present.
    Remove,
    /// Report presence.
    Contains,
}

/// One completed operation with its observed result and real-time
/// invocation/response timestamps (any monotonic unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The operation.
    pub op: Op,
    /// The value it returned.
    pub result: bool,
    /// Invocation timestamp.
    pub start: u64,
    /// Response timestamp (must be `>= start`).
    pub end: u64,
}

impl Event {
    /// The sequential specification: given the abstract state (key
    /// present?), does this event's result match, and what is the state
    /// afterwards? `None` = result impossible from this state.
    fn apply(&self, present: bool) -> Option<bool> {
        match (self.op, self.result) {
            (Op::Insert, true) if !present => Some(true),
            (Op::Insert, false) if present => Some(present),
            (Op::Remove, true) if present => Some(false),
            (Op::Remove, false) if !present => Some(present),
            (Op::Contains, r) if r == present => Some(present),
            _ => None,
        }
    }
}

/// Checks that a single-key history is linearizable against set semantics
/// with initial state "absent".
///
/// # Errors
///
/// Returns a description when the history is not linearizable, malformed
/// (`end < start`), or longer than [`MAX_EVENTS`].
pub fn check_history(events: &[Event]) -> Result<(), String> {
    check_history_from(events, false)
}

/// [`check_history`] with an explicit initial state (e.g. `true` when the
/// key was preloaded).
pub fn check_history_from(events: &[Event], initially_present: bool) -> Result<(), String> {
    if events.len() > MAX_EVENTS {
        return Err(format!(
            "history too long ({} events > {MAX_EVENTS}); split the workload",
            events.len()
        ));
    }
    for (i, e) in events.iter().enumerate() {
        if e.end < e.start {
            return Err(format!("event {i} has end < start: {e:?}"));
        }
    }
    let n = events.len();
    if n == 0 {
        return Ok(());
    }
    // precedes[i] = bitmask of events that must be linearized before i
    // (their response precedes i's invocation).
    let mut precedes = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && events[j].end < events[i].start {
                precedes[i] |= 1 << j;
            }
        }
    }
    // Depth-first search over (done-mask, state) with memoized failures.
    let mut failed: HashSet<(u64, bool)> = HashSet::new();
    fn dfs(
        events: &[Event],
        precedes: &[u64],
        done: u64,
        present: bool,
        failed: &mut HashSet<(u64, bool)>,
    ) -> bool {
        let n = events.len();
        if done == (if n == 64 { u64::MAX } else { (1u64 << n) - 1 }) {
            return true;
        }
        if failed.contains(&(done, present)) {
            return false;
        }
        for i in 0..n {
            let bit = 1u64 << i;
            if done & bit != 0 {
                continue;
            }
            // i is a candidate only if everything preceding it is done.
            if precedes[i] & !done != 0 {
                continue;
            }
            if let Some(next_state) = events[i].apply(present) {
                if dfs(events, precedes, done | bit, next_state, failed) {
                    return true;
                }
            }
        }
        failed.insert((done, present));
        false
    }
    if dfs(events, &precedes, 0, initially_present, &mut failed) {
        Ok(())
    } else {
        Err(format!(
            "no linearization exists for {n}-event history: {events:?}"
        ))
    }
}

/// Convenience: groups `(key, event)` pairs and checks each key's history.
///
/// # Errors
///
/// Returns the first key whose history fails, with the reason.
pub fn check_keyed_histories<K: Ord + std::fmt::Debug + Clone>(
    entries: &[(K, Event)],
) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut per_key: BTreeMap<K, Vec<Event>> = BTreeMap::new();
    for (k, e) in entries {
        per_key.entry(k.clone()).or_default().push(*e);
    }
    for (k, mut events) in per_key {
        events.sort_by_key(|e| e.start);
        check_history(&events).map_err(|e| format!("key {k:?}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: Op, result: bool, start: u64, end: u64) -> Event {
        Event {
            op,
            result,
            start,
            end,
        }
    }

    #[test]
    fn sequential_alternation_ok() {
        let h = [
            ev(Op::Insert, true, 0, 1),
            ev(Op::Contains, true, 2, 3),
            ev(Op::Remove, true, 4, 5),
            ev(Op::Contains, false, 6, 7),
            ev(Op::Insert, true, 8, 9),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn double_successful_insert_rejected() {
        let h = [ev(Op::Insert, true, 0, 1), ev(Op::Insert, true, 2, 3)];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn overlapping_inserts_one_fails_ok() {
        // Two concurrent inserts, one true one false: linearizable.
        let h = [ev(Op::Insert, true, 0, 10), ev(Op::Insert, false, 5, 15)];
        assert!(check_history(&h).is_ok());
        // Both true while overlapping: still impossible (no remove).
        let h = [ev(Op::Insert, true, 0, 10), ev(Op::Insert, true, 5, 15)];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn concurrent_insert_remove_interleavings() {
        // remove(true) overlapping insert(true) from empty: the remove can
        // linearize after the insert.
        let h = [ev(Op::Insert, true, 0, 10), ev(Op::Remove, true, 5, 15)];
        assert!(check_history(&h).is_ok());
        // remove strictly before insert: remove(true) impossible.
        let h = [ev(Op::Remove, true, 0, 1), ev(Op::Insert, true, 5, 6)];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn contains_respects_real_time() {
        // contains(false) strictly after a successful insert with no
        // remove anywhere: not linearizable.
        let h = [ev(Op::Insert, true, 0, 1), ev(Op::Contains, false, 5, 6)];
        assert!(check_history(&h).is_err());
        // Overlapping: fine (contains linearizes first).
        let h = [ev(Op::Insert, true, 0, 10), ev(Op::Contains, false, 5, 6)];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn preloaded_state() {
        let h = [ev(Op::Remove, true, 0, 1)];
        assert!(check_history(&h).is_err());
        assert!(check_history_from(&h, true).is_ok());
    }

    #[test]
    fn malformed_event_rejected() {
        let h = [ev(Op::Insert, true, 10, 5)];
        assert!(check_history(&h).unwrap_err().contains("end < start"));
    }

    #[test]
    fn too_long_history_rejected() {
        let h: Vec<Event> = (0..65)
            .map(|i| ev(Op::Contains, false, i * 2, i * 2 + 1))
            .collect();
        assert!(check_history(&h).unwrap_err().contains("too long"));
    }

    #[test]
    fn empty_history_ok() {
        assert!(check_history(&[]).is_ok());
    }

    #[test]
    fn keyed_grouping() {
        let entries = vec![
            (1u64, ev(Op::Insert, true, 0, 1)),
            (2u64, ev(Op::Insert, true, 0, 1)),
            (1u64, ev(Op::Remove, true, 2, 3)),
            (2u64, ev(Op::Contains, true, 2, 3)),
        ];
        assert!(check_keyed_histories(&entries).is_ok());
        let bad = vec![
            (1u64, ev(Op::Insert, true, 0, 1)),
            (1u64, ev(Op::Insert, true, 2, 3)),
        ];
        let err = check_keyed_histories(&bad).unwrap_err();
        assert!(err.contains("key 1"));
    }

    #[test]
    fn wide_concurrency_window_is_searchable() {
        // 12 fully-overlapping ops: 6 inserts (1 true) + 5 removes... keep
        // it consistent: one insert succeeds, the rest fail; one remove
        // succeeds, the rest fail; contains observations both ways.
        let mut h = vec![ev(Op::Insert, true, 0, 100)];
        for _ in 0..4 {
            h.push(ev(Op::Insert, false, 0, 100));
        }
        h.push(ev(Op::Remove, true, 0, 100));
        for _ in 0..3 {
            h.push(ev(Op::Remove, false, 0, 100));
        }
        h.push(ev(Op::Contains, true, 0, 100));
        h.push(ev(Op::Contains, false, 0, 100));
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn deep_failed_remove_chain() {
        // remove(false) must NOT be linearizable between insert(true) and
        // remove(true) when it strictly follows the insert and strictly
        // precedes the remove.
        let h = [
            ev(Op::Insert, true, 0, 1),
            ev(Op::Remove, false, 2, 3),
            ev(Op::Remove, true, 4, 5),
        ];
        assert!(check_history(&h).is_err());
    }
}

#[cfg(test)]
mod generative_tests {
    use super::*;
    use proptest::prelude::*;

    /// Simulates a *sequential* execution of random ops (results derived
    /// from the specification), then jitters the intervals so adjacent ops
    /// overlap. Such a history has a linearization by construction (the
    /// generating order), so the checker must accept it.
    fn valid_history(ops: &[u8], overlap: u64) -> Vec<Event> {
        let mut present = false;
        let mut out = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let t = i as u64 * 10;
            let (op, result) = match op % 3 {
                0 => {
                    let r = !present;
                    present = true;
                    (Op::Insert, r)
                }
                1 => {
                    let r = present;
                    present = false;
                    (Op::Remove, r)
                }
                _ => (Op::Contains, present),
            };
            out.push(Event {
                op,
                result,
                start: t.saturating_sub(overlap),
                end: t + overlap,
            });
        }
        out
    }

    proptest! {
        #[test]
        fn sequentially_generated_histories_always_pass(
            ops in proptest::collection::vec(any::<u8>(), 0..40),
            overlap in 0u64..30,
        ) {
            let h = valid_history(&ops, overlap);
            prop_assert!(check_history(&h).is_ok(), "{h:?}");
        }

        /// Flipping one result of a *non-overlapping* sequential history
        /// always breaks it: with disjoint intervals the linearization
        /// order is forced, and every op's result is state-determined.
        #[test]
        fn flipped_result_in_strict_history_fails(
            ops in proptest::collection::vec(any::<u8>(), 1..30),
            victim_idx in any::<prop::sample::Index>(),
        ) {
            let mut h = valid_history(&ops, 0);
            let v = victim_idx.index(h.len());
            h[v].result = !h[v].result;
            prop_assert!(check_history(&h).is_err(), "flip at {v}: {h:?}");
        }
    }
}
