//! History-recording stress runner with linearizability checking.
//!
//! Runs a seeded mixed insert/remove/contains workload against any registry
//! structure, records every operation as a [`linearize::Event`] with
//! real-time bounds from a global logical clock, and feeds each per-key
//! history to the Wing & Gong checker. Two execution modes share the same
//! planned workload:
//!
//! * **normal mode** ([`stress_named`]) — real threads under the OS
//!   scheduler; works for every structure in the registry and doubles as a
//!   tier-1 smoke test;
//! * **deterministic mode** ([`stress_named_det`], `--features
//!   deterministic`) — the workload runs under the seeded cooperative
//!   scheduler of `skipgraph::det`, so a failing seed replays exactly; on a
//!   violation the runner *shrinks* the failure (drops operations, then
//!   bisects away preemption points) and reports a minimal seed + operation
//!   trace. Only the lock-free, maintenance-thread-free structures are
//!   eligible (see [`DET_STRUCTURES`]).

use instrument::ThreadCtx;
use linearize::{check_history_from, Event, Op, MAX_EVENTS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skipgraph::{ConcurrentMap, MapHandle};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[cfg(feature = "deterministic")]
use skipgraph::det::{self, DetConfig, Policy, Trace};

/// Structures eligible for deterministic-schedule stress: every shared
/// access goes through the `TaggedAtomic` facade, and no background
/// maintenance thread runs outside the scheduler. Lock-based structures
/// (`locked_skiplist`, `coarse_btreemap`) would deadlock the cooperative
/// scheduler; `nohotspot`/`rotating`/`numask` spawn maintenance threads
/// the scheduler cannot sequence.
pub const DET_STRUCTURES: &[&str] = &[
    "layered_map_sg",
    "lazy_layered_sg",
    "reclaim_layered_sg",
    "layered_map_ssg",
    "layered_map_ll",
    "layered_map_sl",
    "batched_layered_sg",
    "skipgraph",
    "blocked_sg",
    "anchor_blocked_sg",
    "hashed_sg",
    "replicated_sg",
    "adaptive_sg",
    "skiplist",
    "skiplist_norelink",
    "harris_ll",
];

/// A seeded stress workload. The plan derived from it is a pure function
/// of the fields, so a (config, schedule-seed) pair identifies a run.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Worker thread count.
    pub threads: u16,
    /// Keys are drawn from `0..key_space`.
    pub key_space: u64,
    /// Planned operations per thread.
    pub ops_per_thread: usize,
    /// Percentage of operations that are updates (split evenly between
    /// insert and remove); the rest are `contains`.
    pub update_pct: u32,
    /// Preload every even key before the measured run.
    pub preload: bool,
    /// Seed for the workload plan (op kinds and keys).
    pub seed: u64,
}

impl StressConfig {
    /// A small bounded workload suitable for tier-1 smoke runs.
    pub fn smoke(seed: u64) -> Self {
        Self {
            threads: 3,
            key_space: 16,
            ops_per_thread: 40,
            update_pct: 60,
            preload: false,
            seed,
        }
    }

    /// A contended workload: more threads and ops, small key space.
    pub fn contended(seed: u64) -> Self {
        Self {
            threads: 4,
            key_space: 12,
            ops_per_thread: 120,
            update_pct: 70,
            preload: true,
            seed,
        }
    }
}

/// One planned operation (the key is fixed; the result is observed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedOp {
    /// Operation kind.
    pub op: Op,
    /// Target key.
    pub key: u64,
}

/// One completed operation as recorded by the runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// Executing thread.
    pub thread: u16,
    /// Operation kind.
    pub op: Op,
    /// Target key.
    pub key: u64,
    /// Observed result.
    pub result: bool,
    /// Logical invocation timestamp.
    pub start: u64,
    /// Logical response timestamp.
    pub end: u64,
}

impl OpRecord {
    fn event(&self) -> Event {
        Event {
            op: self.op,
            result: self.result,
            start: self.start,
            end: self.end,
        }
    }
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{} {:?}({})={} @[{},{}]",
            self.thread, self.op, self.key, self.result, self.start, self.end
        )
    }
}

/// Derives the per-thread operation plans from the config. Per-key volume
/// is capped so every per-key history stays well under
/// [`linearize::MAX_EVENTS`].
pub fn plan_workload(cfg: &StressConfig) -> Vec<Vec<PlannedOp>> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5712_e55c_0a6e_u64);
    let per_key_cap = (MAX_EVENTS - 8) as u64;
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut plans = Vec::with_capacity(cfg.threads as usize);
    for _ in 0..cfg.threads {
        let mut plan = Vec::with_capacity(cfg.ops_per_thread);
        for _ in 0..cfg.ops_per_thread {
            let kind = rng.gen_range(0u32..100);
            let op = if kind < cfg.update_pct / 2 {
                Op::Insert
            } else if kind < cfg.update_pct {
                Op::Remove
            } else {
                Op::Contains
            };
            let mut key = rng.gen_range(0..cfg.key_space);
            // Respect the checker's per-key event cap: probe forward until
            // a key with remaining room (deterministic).
            let mut probes = 0;
            while counts.get(&key).copied().unwrap_or(0) >= per_key_cap {
                key = (key + 1) % cfg.key_space;
                probes += 1;
                assert!(
                    probes <= cfg.key_space,
                    "workload too large for key space: every key at the per-key cap"
                );
            }
            *counts.entry(key).or_insert(0) += 1;
            plan.push(PlannedOp { op, key });
        }
        plans.push(plan);
    }
    plans
}

/// Whether `key` starts present for this config (preloaded even keys).
pub fn initially_present(cfg: &StressConfig, key: u64) -> bool {
    cfg.preload && key % 2 == 0
}

fn preload_map<M: ConcurrentMap<u64, u64>>(map: &M, cfg: &StressConfig) {
    if !cfg.preload {
        return;
    }
    let mut h = map.pin(ThreadCtx::plain(0));
    let mut key = 0;
    while key < cfg.key_space {
        let fresh = h.insert(key, key);
        assert!(fresh, "preload found key {key} already present");
        key += 2;
    }
}

fn worker_body<H: MapHandle<u64, u64>>(
    mut handle: H,
    thread: u16,
    plan: &[PlannedOp],
    clock: &AtomicU64,
    out: &Mutex<Vec<OpRecord>>,
) {
    let mut records = Vec::with_capacity(plan.len());
    for p in plan {
        let start = clock.fetch_add(1, Ordering::Relaxed);
        let result = match p.op {
            Op::Insert => handle.insert(p.key, p.key),
            Op::Remove => handle.remove(&p.key),
            Op::Contains => handle.contains(&p.key),
        };
        let end = clock.fetch_add(1, Ordering::Relaxed);
        records.push(OpRecord {
            thread,
            op: p.op,
            key: p.key,
            result,
            start,
            end,
        });
    }
    out.lock().unwrap_or_else(|e| e.into_inner()).extend(records);
}

/// Runs `plans` against `map` with real threads (OS scheduling) and
/// returns every operation record. The map must be freshly built (and
/// preloaded via [`preload_map`] semantics by the caller).
pub fn execute<M: ConcurrentMap<u64, u64>>(map: &M, plans: &[Vec<PlannedOp>]) -> Vec<OpRecord> {
    let clock = AtomicU64::new(1);
    let slots: Vec<Mutex<Vec<OpRecord>>> = plans.iter().map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        for (t, plan) in plans.iter().enumerate() {
            let clock = &clock;
            let slot = &slots[t];
            s.spawn(move || {
                let handle = map.pin(ThreadCtx::plain(t as u16));
                worker_body(handle, t as u16, plan, clock, slot);
            });
        }
    });
    collect_records(slots)
}

/// Runs `plans` under the deterministic scheduler; returns the records and
/// the schedule trace. Same seed + config + structure → byte-for-byte
/// identical records and trace.
#[cfg(feature = "deterministic")]
pub fn execute_det<M: ConcurrentMap<u64, u64>>(
    map: &M,
    plans: &[Vec<PlannedOp>],
    det_cfg: &DetConfig,
) -> (Vec<OpRecord>, Trace) {
    let clock = AtomicU64::new(1);
    let slots: Vec<Mutex<Vec<OpRecord>>> = plans.iter().map(|_| Mutex::new(Vec::new())).collect();
    let trace = {
        let clock = &clock;
        let slots = &slots;
        let workers: Vec<Box<dyn FnOnce() + Send + '_>> = plans
            .iter()
            .enumerate()
            .map(|(t, plan)| {
                let b: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let handle = map.pin(ThreadCtx::plain(t as u16));
                    worker_body(handle, t as u16, plan, clock, &slots[t]);
                });
                b
            })
            .collect();
        det::run_threads(det_cfg, workers)
    };
    (collect_records(slots), trace)
}

fn collect_records(slots: Vec<Mutex<Vec<OpRecord>>>) -> Vec<OpRecord> {
    slots
        .into_iter()
        .flat_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect()
}

/// The essence of one linearizability failure.
#[derive(Clone, Debug)]
pub struct KeyFailure {
    /// The violating key.
    pub key: u64,
    /// The checker's explanation.
    pub reason: String,
    /// That key's full history, sorted by invocation.
    pub history: Vec<OpRecord>,
}

/// Checks every per-key history in `records`. `Err` carries the first
/// violating key (by key order).
pub fn check_records(records: &[OpRecord], cfg: &StressConfig) -> Result<(), KeyFailure> {
    let mut per_key: BTreeMap<u64, Vec<OpRecord>> = BTreeMap::new();
    for r in records {
        per_key.entry(r.key).or_default().push(*r);
    }
    for (key, mut history) in per_key {
        history.sort_by_key(|r| r.start);
        let events: Vec<Event> = history.iter().map(|r| r.event()).collect();
        if let Err(reason) = check_history_from(&events, initially_present(cfg, key)) {
            return Err(KeyFailure {
                key,
                reason,
                history,
            });
        }
    }
    Ok(())
}

/// A (possibly shrunk) reported failure, with everything needed to replay
/// it: the structure, the workload plans, and the schedule.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Registry name of the structure under test.
    pub structure: String,
    /// The stress config the failure was found under.
    pub config: StressConfig,
    /// Remaining planned operations per thread (shrunk in det mode).
    pub plans: Vec<Vec<PlannedOp>>,
    /// The violation.
    pub failure: KeyFailure,
    /// Schedule seed and segments (det mode only).
    #[cfg(feature = "deterministic")]
    pub schedule: Option<(DetConfig, Trace)>,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "linearizability violation: structure={} key={} workload_seed={}",
            self.structure, self.failure.key, self.config.seed
        )?;
        writeln!(f, "  reason: {}", self.failure.reason)?;
        writeln!(f, "  history of key {}:", self.failure.key)?;
        for r in &self.failure.history {
            writeln!(f, "    {r}")?;
        }
        let total: usize = self.plans.iter().map(Vec::len).sum();
        writeln!(f, "  minimal plan: {total} ops")?;
        for (t, plan) in self.plans.iter().enumerate() {
            if plan.is_empty() {
                continue;
            }
            let ops: Vec<String> = plan.iter().map(|p| format!("{:?}({})", p.op, p.key)).collect();
            writeln!(f, "    t{t}: {}", ops.join(" "))?;
        }
        #[cfg(feature = "deterministic")]
        if let Some((det_cfg, trace)) = &self.schedule {
            writeln!(f, "  schedule: {}", trace.render())?;
            writeln!(
                f,
                "  replay: SCHEDULE_SEED={} with Policy::{:?}",
                det_cfg.seed, det_cfg.policy
            )?;
        }
        Ok(())
    }
}

/// Builds the named structure fresh and evaluates `$body` with `$map`
/// bound to it. Only the det-eligible subset plus the remaining registry
/// structures that are safe under OS scheduling.
macro_rules! with_structure {
    ($name:expr, $cfg:expr, |$map:ident| $body:expr) => {{
        use baselines::{
            CoarseLockMap, HarrisList, LockFreeSkipList, LockedSkipList, NoHotspotSkipList,
            NumaskSkipList, RotatingSkipList, SkipListConfig,
        };
        use skipgraph::{BatchConfig, BatchedLayeredMap, GraphConfig, LayeredMap, SkipGraph};
        let t = $cfg.threads as usize;
        let cap = (($cfg.key_space as usize / t.max(1)) * 2).clamp(1 << 10, 1 << 16);
        let maint = std::time::Duration::from_millis(2);
        match $name {
            "layered_map_sg" => {
                let $map = LayeredMap::<u64, u64>::new(GraphConfig::new(t).chunk_capacity(cap));
                $body
            }
            "lazy_layered_sg" => {
                let $map =
                    LayeredMap::<u64, u64>::new(GraphConfig::new(t).lazy(true).chunk_capacity(cap));
                $body
            }
            "reclaim_layered_sg" => {
                // Epoch-based reclamation on: retired slots are recycled
                // under the scheduler, hitting the generation-checked
                // stale-hint fallbacks.
                let $map = LayeredMap::<u64, u64>::new(
                    GraphConfig::new(t).reclaim(true).chunk_capacity(cap),
                );
                $body
            }
            "layered_map_ssg" => {
                let $map = LayeredMap::<u64, u64>::new(
                    GraphConfig::new(t).sparse(true).chunk_capacity(cap),
                );
                $body
            }
            "layered_map_ll" => {
                let $map =
                    LayeredMap::<u64, u64>::new(GraphConfig::linked_list(t).chunk_capacity(cap));
                $body
            }
            "layered_map_sl" => {
                let $map = LayeredMap::<u64, u64>::new(
                    GraphConfig::single_skip_list(t).chunk_capacity(cap),
                );
                $body
            }
            "batched_layered_sg" => {
                // Two synthetic sockets (when threads allow) so the
                // combiner lease and cross-slot draining are exercised.
                let sockets = if t >= 2 { 2 } else { 1 };
                let $map = BatchedLayeredMap::<u64, u64>::new(
                    GraphConfig::new(t).lazy(true).chunk_capacity(cap),
                    BatchConfig::uniform(t, sockets),
                );
                $body
            }
            "skipgraph" => {
                let $map = SkipGraph::<u64, u64>::new(GraphConfig::new(t).chunk_capacity(cap));
                $body
            }
            "blocked_sg" => {
                // A small blocking factor so stress schedules actually
                // reach the split/merge paths, not just in-block CASes.
                let $map = skipgraph::BlockedSkipMap::<u64, u64>::new(
                    GraphConfig::new(t).chunk_capacity(cap),
                    4,
                );
                $body
            }
            "anchor_blocked_sg" => {
                // The anchor-granular policy over the same small blocking
                // factor: compacting merges (threshold 1) and left-biased
                // splits keep the freeze/rebuild paths hot, and a nonzero
                // threshold selects the anchor-cache bug-injection arm
                // (severed covering check) instead of the lost-insert one.
                let $map = skipgraph::BlockedSkipMap::<u64, u64>::with_policy(
                    GraphConfig::new(t).chunk_capacity(cap),
                    4,
                    skipgraph::BlockPolicy {
                        split_left_pct: 65,
                        merge_threshold: 1,
                        fill_target: 3,
                    },
                );
                $body
            }
            "hashed_sg" => {
                // Shared point-read hash index on, no reclamation: eager
                // removes must invalidate their entries themselves (the
                // generation backstop never fires), which is precisely
                // the coherence duty the bug-injection lane deletes.
                let $map = LayeredMap::<u64, u64>::new(
                    GraphConfig::new(t).hash_index(true).chunk_capacity(cap),
                );
                $body
            }
            "replicated_sg" => {
                // Per-socket replicas over partitioned operation logs
                // (`skipgraph::replicate`): two synthetic sockets so reads
                // on one replica race replays of the other, with a tiny
                // log and lag bound so schedules reach the wraparound and
                // backpressure/helping paths.
                let sockets = if t >= 2 { 2 } else { 1 };
                // The bug-injection build also compiles the lazy-remove
                // and index-coherence faults into lazy/indexed configs;
                // build the replicas over the plain eager graph there so
                // the severed read-side tail-wait is the only live fault
                // in this lane (each injected fault has its own lane).
                #[cfg(feature = "bug-injection")]
                let gcfg = GraphConfig::new(t).chunk_capacity(cap);
                #[cfg(not(feature = "bug-injection"))]
                let gcfg = GraphConfig::new(t)
                    .lazy(true)
                    .hash_index(true)
                    .chunk_capacity(cap);
                let $map = skipgraph::ReplicatedLayeredMap::<u64, u64>::new(
                    gcfg,
                    skipgraph::ReplicaConfig::uniform(t, sockets)
                        .logs(2)
                        .log_capacity(16)
                        .max_lag(12),
                );
                $body
            }
            "adaptive_sg" => {
                // The replicated map with the adaptation subsystem live: a
                // tiny sensor window and zero dwell so the replication gate
                // downshifts/upshifts *within* a stress schedule, putting
                // the drain-then-redirect transitions directly under the
                // deterministic scheduler and the linearizability checker.
                // The bug-injection build severs the downshift drain (the
                // only live fault in this lane — replicated_sg keeps the
                // read-side tail-wait fault).
                let sockets = if t >= 2 { 2 } else { 1 };
                // The band straddles the stress mixes' ~70% write ratio:
                // 8-op windows fluctuate across both edges, so the gate
                // oscillates and schedules see *repeated* downshifts with
                // cross-socket writes in flight, not one quiet downshift
                // during the preload.
                let acfg = skipgraph::AdaptConfig::new()
                    .window_ops(8)
                    .dwell_windows(0)
                    .write_band(60, 75);
                #[cfg(feature = "bug-injection")]
                let gcfg = GraphConfig::new(t).chunk_capacity(cap);
                #[cfg(not(feature = "bug-injection"))]
                let gcfg = GraphConfig::new(t)
                    .lazy(true)
                    .hash_index(true)
                    .chunk_capacity(cap)
                    .adapt(acfg);
                let $map = skipgraph::ReplicatedLayeredMap::<u64, u64>::new(
                    gcfg,
                    skipgraph::ReplicaConfig::uniform(t, sockets)
                        .logs(2)
                        .log_capacity(16)
                        .max_lag(12)
                        .adapt(acfg),
                );
                $body
            }
            "skiplist" => {
                let $map = LockFreeSkipList::<u64, u64>::new(
                    SkipListConfig::new(t, $cfg.key_space).chunk_capacity(cap),
                );
                $body
            }
            "skiplist_norelink" => {
                let $map = LockFreeSkipList::<u64, u64>::new(
                    SkipListConfig::new(t, $cfg.key_space)
                        .relink(false)
                        .chunk_capacity(cap),
                );
                $body
            }
            "harris_ll" => {
                let $map = HarrisList::<u64, u64>::new(t, cap);
                $body
            }
            "locked_skiplist" => {
                let levels = SkipListConfig::new(t, $cfg.key_space).levels;
                let $map = LockedSkipList::<u64, u64>::new(t, levels, cap);
                $body
            }
            "coarse_btreemap" => {
                let $map = CoarseLockMap::<u64, u64>::new();
                $body
            }
            "nohotspot" => {
                let $map = NoHotspotSkipList::<u64, u64>::new(t, cap, maint);
                $body
            }
            "rotating" => {
                let $map = RotatingSkipList::<u64, u64>::new(t, cap, maint);
                $body
            }
            "numask" => {
                let topology = numa::Topology::detect_or_paper();
                let zones = numa::Placement::new(&topology, t).numa_nodes();
                let $map = NumaskSkipList::<u64, u64>::new(zones, cap, maint);
                $body
            }
            other => panic!("unknown structure {other:?}; see synchro::registry::STRUCTURES"),
        }
    }};
}

/// Runs the stress workload against the named structure under normal OS
/// scheduling and checks every per-key history. Returns the number of
/// recorded operations on success.
///
/// # Errors
///
/// The (unshrunk) failure report when some key's history is not
/// linearizable.
pub fn stress_named(name: &str, cfg: &StressConfig) -> Result<usize, Box<FailureReport>> {
    let plans = plan_workload(cfg);
    let records = with_structure!(name, cfg, |map| {
        preload_map(&map, cfg);
        execute(&map, &plans)
    });
    match check_records(&records, cfg) {
        Ok(()) => Ok(records.len()),
        Err(failure) => Err(Box::new(FailureReport {
            structure: name.to_string(),
            config: cfg.clone(),
            plans,
            failure,
            #[cfg(feature = "deterministic")]
            schedule: None,
        })),
    }
}

/// Runs `plans` deterministically against a fresh instance of the named
/// structure. Exposed so tests can assert byte-for-byte replay.
#[cfg(feature = "deterministic")]
pub fn records_named_det(
    name: &str,
    cfg: &StressConfig,
    plans: &[Vec<PlannedOp>],
    det_cfg: &DetConfig,
) -> (Vec<OpRecord>, Trace) {
    assert!(
        crate::registry::STRUCTURES.contains(&name),
        "unknown structure {name:?}; see synchro::registry::STRUCTURES"
    );
    assert!(
        DET_STRUCTURES.contains(&name),
        "{name} is not deterministically schedulable (locks or maintenance threads); \
         see synchro::stress::DET_STRUCTURES"
    );
    with_structure!(name, cfg, |map| {
        preload_map(&map, cfg);
        execute_det(&map, plans, det_cfg)
    })
}

/// Deterministic-schedule stress: plan the workload, run it under the
/// seeded scheduler, check histories; on a violation, shrink (drop
/// operations, then bisect away preemption points) and return a minimal
/// replayable report.
///
/// # Errors
///
/// The shrunk failure report.
#[cfg(feature = "deterministic")]
pub fn stress_named_det(
    name: &str,
    cfg: &StressConfig,
    det_cfg: &DetConfig,
) -> Result<Trace, Box<FailureReport>> {
    let plans = plan_workload(cfg);
    let run = |plans: &[Vec<PlannedOp>], dc: &DetConfig| records_named_det(name, cfg, plans, dc);
    let (records, trace) = run(&plans, det_cfg);
    match check_records(&records, cfg) {
        Ok(()) => Ok(trace),
        Err(first) => {
            let (plans, det_cfg, failure, trace) =
                shrink_det(plans, det_cfg.clone(), cfg, first, &run);
            Err(Box::new(FailureReport {
                structure: name.to_string(),
                config: cfg.clone(),
                plans,
                failure,
                schedule: Some((det_cfg, trace)),
            }))
        }
    }
}

/// Greedy ddmin-style shrinking: first drop operation chunks per thread,
/// then replay the failing schedule and bisect away preemption boundaries.
/// Bounded by a run budget so pathological cases stay fast.
#[cfg(feature = "deterministic")]
fn shrink_det<F>(
    mut plans: Vec<Vec<PlannedOp>>,
    mut det_cfg: DetConfig,
    cfg: &StressConfig,
    mut failure: KeyFailure,
    run: &F,
) -> (Vec<Vec<PlannedOp>>, DetConfig, KeyFailure, Trace)
where
    F: Fn(&[Vec<PlannedOp>], &DetConfig) -> (Vec<OpRecord>, Trace),
{
    let mut budget = 400usize;
    let mut try_fail = |plans: &[Vec<PlannedOp>], dc: &DetConfig| -> Option<(KeyFailure, Trace)> {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        let (records, trace) = run(plans, dc);
        check_records(&records, cfg).err().map(|f| (f, trace))
    };

    // Phase 0: re-run to capture the failing trace for later replay.
    let mut trace = match try_fail(&plans, &det_cfg) {
        Some((f, t)) => {
            failure = f;
            t
        }
        None => {
            // Budget exhausted or (unexpectedly) no longer failing; report
            // what we have with an empty schedule.
            let empty = Trace {
                seed: det_cfg.seed,
                decisions: vec![],
            };
            return (plans, det_cfg, failure, empty);
        }
    };

    // Phase 1: per-thread chunked op dropping.
    for t in 0..plans.len() {
        let mut chunk = (plans[t].len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < plans[t].len() {
                let upper = (i + chunk).min(plans[t].len());
                let mut candidate = plans.clone();
                candidate[t].drain(i..upper);
                if let Some((f, tr)) = try_fail(&candidate, &det_cfg) {
                    plans = candidate;
                    failure = f;
                    trace = tr;
                } else {
                    i = upper;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    // Phase 2: pin the schedule to the failing trace, then merge away
    // preemption boundaries in chunks while the failure persists.
    let mut segments = trace.segments();
    det_cfg.policy = Policy::Replay {
        segments: segments.clone(),
    };
    if let Some((f, tr)) = try_fail(&plans, &det_cfg) {
        failure = f;
        trace = tr;
        let mut chunk = (segments.len() / 2).max(1);
        loop {
            let mut b = 1;
            while b < segments.len() {
                let upper = (b + chunk).min(segments.len());
                let mut candidate = segments.clone();
                // Merge segments [b, upper) into segment b-1: the earlier
                // thread keeps running instead of being preempted.
                let extra: u32 = candidate[b..upper].iter().map(|&(_, n)| n).sum();
                candidate[b - 1].1 += extra;
                candidate.drain(b..upper);
                let dc = DetConfig {
                    policy: Policy::Replay {
                        segments: candidate.clone(),
                    },
                    ..det_cfg.clone()
                };
                if let Some((f, tr)) = try_fail(&plans, &dc) {
                    segments = candidate;
                    det_cfg = dc;
                    failure = f;
                    trace = tr;
                } else {
                    b = upper;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    (plans, det_cfg, failure, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_respects_cap() {
        let cfg = StressConfig::smoke(11);
        let p1 = plan_workload(&cfg);
        let p2 = plan_workload(&cfg);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), cfg.threads as usize);
        assert!(p1.iter().all(|p| p.len() == cfg.ops_per_thread));
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for p in p1.iter().flatten() {
            *counts.entry(p.key).or_insert(0) += 1;
            assert!(p.key < cfg.key_space);
        }
        assert!(counts.values().all(|&c| c <= MAX_EVENTS - 8));
    }

    #[test]
    fn different_seeds_differ() {
        let a = plan_workload(&StressConfig::smoke(1));
        let b = plan_workload(&StressConfig::smoke(2));
        assert_ne!(a, b);
    }

    #[test]
    fn check_records_flags_violations() {
        let cfg = StressConfig::smoke(0);
        let rec = |op, result, start, end| OpRecord {
            thread: 0,
            op,
            key: 5,
            result,
            start,
            end,
        };
        // remove(true) on a never-inserted key.
        let bad = vec![rec(Op::Remove, true, 1, 2)];
        let f = check_records(&bad, &cfg).unwrap_err();
        assert_eq!(f.key, 5);
        // The same is fine when preloaded... but key 5 is odd, so still bad.
        let cfg_pre = StressConfig {
            preload: true,
            ..cfg.clone()
        };
        assert!(check_records(&bad, &cfg_pre).is_err());
        // An even preloaded key may be removed first thing.
        let bad_even: Vec<OpRecord> = bad
            .iter()
            .map(|r| OpRecord { key: 4, ..*r })
            .collect();
        assert!(check_records(&bad_even, &cfg_pre).is_ok());
        assert!(check_records(&bad_even, &cfg).is_err());
    }

    #[test]
    fn normal_stress_passes_on_reference_structure() {
        let cfg = StressConfig::smoke(3);
        let n = stress_named("coarse_btreemap", &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(n, cfg.threads as usize * cfg.ops_per_thread);
    }
}
