//! The structure registry: every map of the paper's evaluation, by its
//! figure-legend name.
//!
//! | Name | Structure |
//! |---|---|
//! | `layered_map_sg` | local maps over a (non-lazy) skip graph |
//! | `lazy_layered_sg` | the lazy variant |
//! | `layered_map_ssg` | local maps over a *sparse* skip graph |
//! | `layered_map_ll` | local maps over a linked list (MaxLevel 0) |
//! | `layered_map_sl` | local maps over a single skip list (no partitioning) |
//! | `batched_layered_sg` | lazy layered map behind the NUMA-local flat-combining executor |
//! | `skipgraph` | the skip graph without layering |
//! | `blocked_sg` | fat level-0 blocks (B-skiplist blocking) over the lazy skip graph |
//! | `anchor_blocked_sg` | blocked map under the anchor-granular policy (compacting merges, left-biased splits) |
//! | `hashed_sg` | layered map with the shared lock-free hash index (Skip Hash fast path) |
//! | `replicated_sg` | per-socket replicas of the lazy hash-indexed map over partitioned operation logs |
//! | `adaptive_sg` | the replicated map with the adaptation subsystem engaged (small sensor windows) |
//! | `skiplist` | lock-free skip list with the relink optimization |
//! | `skiplist_norelink` | the same without relink (ablation) |
//! | `locked_skiplist` | optimistic lazy lock-based skip list |
//! | `harris_ll` | Harris linked list (unlayered) |
//! | `nohotspot` | No-Hotspot-style skip list |
//! | `rotating` | Rotating-style skip list |
//! | `numask` | NUMASK-style NUMA-aware skip list |
//! | `coarse_btreemap` | one `RwLock` around a `BTreeMap` (naive reference; not in the paper) |

use crate::workload::{run_trial, InstrMode, TrialResult, TrialSummary, Workload};
use baselines::{
    CoarseLockMap, HarrisList, LockFreeSkipList, LockedSkipList, NoHotspotSkipList,
    NumaskSkipList, RotatingSkipList, SkipListConfig,
};
use numa::{Placement, Topology};
use skipgraph::{
    AdaptConfig, BatchConfig, BatchedLayeredMap, BlockPolicy, BlockedSkipMap, GraphConfig,
    LayeredMap, ReplicaConfig, ReplicatedLayeredMap, SkipGraph,
};
use std::time::Duration;

/// All registry names, in the order the paper's figures list them.
pub const STRUCTURES: &[&str] = &[
    "layered_map_sg",
    "lazy_layered_sg",
    "reclaim_layered_sg",
    "layered_map_ssg",
    "layered_map_ll",
    "layered_map_sl",
    "batched_layered_sg",
    "skipgraph",
    "blocked_sg",
    "anchor_blocked_sg",
    "hashed_sg",
    "replicated_sg",
    "adaptive_sg",
    "skiplist",
    "skiplist_norelink",
    "locked_skiplist",
    "harris_ll",
    "nohotspot",
    "rotating",
    "numask",
    "coarse_btreemap",
];

/// The subset the paper's throughput figures plot (Figs. 2–4, 11–13).
pub const FIGURE_STRUCTURES: &[&str] = &[
    "layered_map_sg",
    "lazy_layered_sg",
    "layered_map_ssg",
    "layered_map_ll",
    "layered_map_sl",
    "skipgraph",
    "skiplist",
    "locked_skiplist",
    "nohotspot",
    "rotating",
    "numask",
];

fn maintenance_period() -> Duration {
    Duration::from_millis(2)
}

fn chunk_capacity(workload: &Workload) -> usize {
    // Enough for the preload plus churn without mapping the paper's 2^20
    // objects per thread on a small machine.
    ((workload.key_space as usize / workload.threads.max(1)) * 2).clamp(1 << 10, 1 << 16)
}

/// Builds the named structure and runs one trial. Panics on an unknown
/// name (see [`STRUCTURES`]).
pub fn run_named(name: &str, workload: &Workload, instr: &InstrMode) -> TrialResult {
    let t = workload.threads;
    let cap = chunk_capacity(workload);
    match name {
        "layered_map_sg" => run_trial(
            &LayeredMap::<u64, u64>::new(GraphConfig::new(t).chunk_capacity(cap)),
            workload,
            instr,
        ),
        "lazy_layered_sg" => run_trial(
            &LayeredMap::<u64, u64>::new(GraphConfig::new(t).lazy(true).chunk_capacity(cap)),
            workload,
            instr,
        ),
        // Non-lazy layered map with epoch-based reclamation: removals
        // retire their nodes through the grace-period protocol and slots
        // are recycled NUMA-locally, exercising the generation-checked
        // hint paths under churn.
        "reclaim_layered_sg" => run_trial(
            &LayeredMap::<u64, u64>::new(GraphConfig::new(t).reclaim(true).chunk_capacity(cap)),
            workload,
            instr,
        ),
        "layered_map_ssg" => run_trial(
            &LayeredMap::<u64, u64>::new(GraphConfig::new(t).sparse(true).chunk_capacity(cap)),
            workload,
            instr,
        ),
        "layered_map_ll" => run_trial(
            &LayeredMap::<u64, u64>::new(GraphConfig::linked_list(t).chunk_capacity(cap)),
            workload,
            instr,
        ),
        "layered_map_sl" => run_trial(
            &LayeredMap::<u64, u64>::new(GraphConfig::single_skip_list(t).chunk_capacity(cap)),
            workload,
            instr,
        ),
        "batched_layered_sg" => {
            // Slot banks follow the same placement the trial pins threads
            // with, so each bank is genuinely per-NUMA-node.
            let topology = Topology::detect_or_paper();
            let batch = BatchConfig::from_placement(&Placement::new(&topology, t));
            run_trial(
                &BatchedLayeredMap::<u64, u64>::new(
                    GraphConfig::new(t).lazy(true).chunk_capacity(cap),
                    batch,
                ),
                workload,
                instr,
            )
        }
        "skipgraph" => run_trial(
            &SkipGraph::<u64, u64>::new(GraphConfig::new(t).chunk_capacity(cap)),
            workload,
            instr,
        ),
        // Fat level-0 blocks: several keys per anchor node, split/merge
        // under the marked-pointer protocol (see `skipgraph::BlockedSkipMap`).
        "blocked_sg" => run_trial(
            &BlockedSkipMap::<u64, u64>::new(GraphConfig::new(t).chunk_capacity(cap), 8),
            workload,
            instr,
        ),
        // The blocked map under the anchor-granular policy: compacting
        // merges (threshold 1) and leave-behind splits. This is also the
        // configuration whose bug-injection arm severs the anchor cache's
        // covering check (`blocked_sg` keeps the lost-insert arm instead).
        "anchor_blocked_sg" => run_trial(
            &BlockedSkipMap::<u64, u64>::with_policy(
                GraphConfig::new(t).chunk_capacity(cap),
                8,
                BlockPolicy { split_left_pct: 65, merge_threshold: 1, fill_target: 6 },
            ),
            workload,
            instr,
        ),
        // Layered map with the shared point-read hash index installed
        // (non-lazy, no reclamation: eager removes must invalidate their
        // index entries — the exact duty the bug-injection lane skips).
        "hashed_sg" => run_trial(
            &LayeredMap::<u64, u64>::new(
                GraphConfig::new(t).hash_index(true).chunk_capacity(cap),
            ),
            workload,
            instr,
        ),
        // Per-socket node replication: one lazy hash-indexed replica per
        // populated NUMA node, reads served replica-locally under the NR
        // read rule, writes through membership-vector-partitioned
        // operation logs (see `skipgraph::replicate`). Small logs + a
        // tight lag bound keep the backpressure/helping paths hot even in
        // short trials.
        "replicated_sg" => {
            let topology = Topology::detect_or_paper();
            let placement = Placement::new(&topology, t);
            let mut replicas = ReplicaConfig::from_placement(&placement);
            if replicas.sockets() < 2 {
                // Single-node hosts still exercise cross-replica staleness
                // with a synthetic two-socket split.
                replicas = ReplicaConfig::uniform(t, 2);
            }
            let replicas = replicas.logs(2).log_capacity(64).max_lag(48);
            run_trial(
                &ReplicatedLayeredMap::<u64, u64>::new(
                    GraphConfig::new(t)
                        .lazy(true)
                        .hash_index(true)
                        .chunk_capacity(cap),
                    replicas,
                ),
                workload,
                instr,
            )
        }
        // The replicated map with the adaptation subsystem engaged: tiny
        // sensor windows and no dwell so the replication gate, index
        // growth signal, and ascending-split gate all switch within a
        // short trial rather than after thousands of operations.
        "adaptive_sg" => {
            let topology = Topology::detect_or_paper();
            let placement = Placement::new(&topology, t);
            let mut replicas = ReplicaConfig::from_placement(&placement);
            if replicas.sockets() < 2 {
                replicas = ReplicaConfig::uniform(t, 2);
            }
            let replicas = replicas
                .logs(2)
                .log_capacity(64)
                .max_lag(48)
                .adapt(AdaptConfig::new().window_ops(64).dwell_windows(1));
            run_trial(
                &ReplicatedLayeredMap::<u64, u64>::new(
                    GraphConfig::new(t)
                        .lazy(true)
                        .hash_index(true)
                        .chunk_capacity(cap)
                        .adapt(AdaptConfig::new().window_ops(64).dwell_windows(1)),
                    replicas,
                ),
                workload,
                instr,
            )
        }
        "skiplist" => run_trial(
            &LockFreeSkipList::<u64, u64>::new(
                SkipListConfig::new(t, workload.key_space).chunk_capacity(cap),
            ),
            workload,
            instr,
        ),
        "skiplist_norelink" => run_trial(
            &LockFreeSkipList::<u64, u64>::new(
                SkipListConfig::new(t, workload.key_space)
                    .relink(false)
                    .chunk_capacity(cap),
            ),
            workload,
            instr,
        ),
        "locked_skiplist" => {
            let levels = SkipListConfig::new(t, workload.key_space).levels;
            run_trial(
                &LockedSkipList::<u64, u64>::new(t, levels, cap),
                workload,
                instr,
            )
        }
        "harris_ll" => run_trial(&HarrisList::<u64, u64>::new(t, cap), workload, instr),
        "coarse_btreemap" => run_trial(&CoarseLockMap::<u64, u64>::new(), workload, instr),
        "nohotspot" => run_trial(
            &NoHotspotSkipList::<u64, u64>::new(t, cap, maintenance_period()),
            workload,
            instr,
        ),
        "rotating" => run_trial(
            &RotatingSkipList::<u64, u64>::new(t, cap, maintenance_period()),
            workload,
            instr,
        ),
        "numask" => {
            let topology = Topology::detect_or_paper();
            let zones = Placement::new(&topology, t).numa_nodes();
            run_trial(
                &NumaskSkipList::<u64, u64>::new(zones, cap, maintenance_period()),
                workload,
                instr,
            )
        }
        other => panic!("unknown structure {other:?}; see synchro::registry::STRUCTURES"),
    }
}

/// Runs `runs` trials of the named structure and summarizes (mean/std).
pub fn summarize_named(name: &str, workload: &Workload, runs: usize) -> TrialSummary {
    assert!(runs > 0);
    let mut throughputs = Vec::with_capacity(runs);
    let mut effective = Vec::with_capacity(runs);
    for r in 0..runs {
        let w = workload.clone().seed(workload.seed.wrapping_add(r as u64));
        let res = run_named(name, &w, &InstrMode::Off);
        throughputs.push(res.ops_per_ms());
        effective.push(res.effective_update_pct());
    }
    let mean = throughputs.iter().sum::<f64>() / runs as f64;
    let var = if runs > 1 {
        throughputs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (runs - 1) as f64
    } else {
        0.0
    };
    TrialSummary {
        mean_ops_per_ms: mean,
        stddev: var.sqrt(),
        mean_effective_update_pct: effective.iter().sum::<f64>() / runs as f64,
        runs: throughputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_structure_runs() {
        let w = Workload::new(2, 1 << 8)
            .duration(Duration::from_millis(15))
            .no_pin();
        for name in STRUCTURES {
            let res = run_named(name, &w, &InstrMode::Off);
            assert!(res.total_ops > 0, "{name} made no progress");
        }
    }

    #[test]
    #[should_panic(expected = "unknown structure")]
    fn unknown_name_panics() {
        let w = Workload::new(1, 4).duration(Duration::from_millis(1)).no_pin();
        let _ = run_named("nope", &w, &InstrMode::Off);
    }

    #[test]
    fn figure_structures_is_subset() {
        for name in FIGURE_STRUCTURES {
            assert!(STRUCTURES.contains(name), "{name}");
        }
    }
}
