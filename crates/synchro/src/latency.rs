//! Per-operation latency trials.
//!
//! The paper reports throughput; this extension measures the latency
//! distribution of the same Synchrobench-style workload (TSC-timestamped
//! per op, log-bucketed histograms per operation class), which is where
//! the lazy variant's deferred work would show up as tail effects.

use crate::workload::Workload;
use instrument::time::cycles;
use instrument::{LogHistogram, ThreadCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skipgraph::{ConcurrentMap, MapHandle};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Latency distributions (in cycles) of one trial, per operation class.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Insert attempts (successful or not).
    pub insert: LogHistogram,
    /// Remove attempts.
    pub remove: LogHistogram,
    /// Contains.
    pub contains: LogHistogram,
}

impl LatencySummary {
    /// All three classes merged.
    pub fn overall(&self) -> LogHistogram {
        let mut h = self.insert.clone();
        h.merge(&self.remove);
        h.merge(&self.contains);
        h
    }
}

/// Runs the workload once, timestamping every operation. Roughly ~60
/// cycles of rdtsc overhead per op are included in the measurements.
pub fn run_latency_trial<M: ConcurrentMap<u64, u64>>(
    map: &M,
    workload: &Workload,
) -> LatencySummary {
    assert!(workload.threads > 0 && workload.key_space > 1);
    let preload_target = (workload.key_space as f64 * workload.preload_fraction) as u64;
    let preloaded = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(workload.threads + 1);

    let partials: Vec<LatencySummary> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..workload.threads as u16)
            .map(|t| {
                let map = &map;
                let stop = &stop;
                let preloaded = &preloaded;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut rng =
                        SmallRng::seed_from_u64(workload.seed ^ ((t as u64 + 1) * 0x51CA));
                    let mut handle = map.pin(ThreadCtx::plain(t));
                    while preloaded.load(Ordering::Relaxed) < preload_target {
                        let k = rng.gen_range(0..workload.key_space);
                        if handle.insert(k, k) {
                            preloaded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    barrier.wait();
                    let mut out = LatencySummary::default();
                    let mut last_inserted: Option<u64> = None;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..16 {
                            let p: f64 = rng.gen();
                            if p < workload.update_ratio {
                                match last_inserted.take() {
                                    None => {
                                        let k = rng.gen_range(0..workload.key_space);
                                        let t0 = cycles();
                                        let ok = handle.insert(k, k);
                                        out.insert.record(cycles().wrapping_sub(t0));
                                        if ok {
                                            last_inserted = Some(k);
                                        }
                                    }
                                    Some(k) => {
                                        let t0 = cycles();
                                        let _ = handle.remove(&k);
                                        out.remove.record(cycles().wrapping_sub(t0));
                                    }
                                }
                            } else {
                                let k = rng.gen_range(0..workload.key_space);
                                let t0 = cycles();
                                let _ = handle.contains(&k);
                                out.contains.record(cycles().wrapping_sub(t0));
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        while t0.elapsed() < workload.duration {
            std::thread::sleep(Duration::from_millis(1).min(workload.duration));
        }
        stop.store(true, Ordering::Relaxed);
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let mut total = LatencySummary::default();
    for p in partials {
        total.insert.merge(&p.insert);
        total.remove.merge(&p.remove);
        total.contains.merge(&p.contains);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipgraph::{GraphConfig, LayeredMap};

    #[test]
    fn latency_trial_collects_histograms() {
        let map: LayeredMap<u64, u64> =
            LayeredMap::new(GraphConfig::new(2).lazy(true).chunk_capacity(4096));
        let w = Workload::new(2, 1 << 8)
            .duration(Duration::from_millis(30))
            .no_pin();
        let s = run_latency_trial(&map, &w);
        assert!(s.insert.count() > 0);
        assert!(s.remove.count() > 0);
        assert!(s.contains.count() > 0);
        let overall = s.overall();
        assert_eq!(
            overall.count(),
            s.insert.count() + s.remove.count() + s.contains.count()
        );
        // Percentiles are ordered and nonzero.
        let p50 = overall.percentile(50.0);
        let p99 = overall.percentile(99.0);
        assert!(p50 > 0);
        assert!(p99 >= p50);
    }
}
