//! Workload definition and trial execution.

use cache_sim::{Cache, Hierarchy, MissCounts};
use std::sync::Mutex;
use instrument::{AccessStats, ThreadCtx};
use numa::{Placement, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skipgraph::{ConcurrentMap, MapHandle};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// A benchmark workload in the paper's terms.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of worker threads `T`.
    pub threads: usize,
    /// Key space size (2^8 = HC, 2^14 = MC, 2^17 = LC).
    pub key_space: u64,
    /// Requested fraction of update operations (0.5 = WH, 0.2 = RH).
    pub update_ratio: f64,
    /// Fraction of the key space preloaded before measuring (0.2; the
    /// paper's LC tests use 0.025).
    pub preload_fraction: f64,
    /// Measured duration of one trial (the paper uses 10 s).
    pub duration: Duration,
    /// RNG seed (per-thread seeds derive from it).
    pub seed: u64,
    /// Pin worker threads according to the detected/modeled topology.
    pub pin: bool,
    /// Zipf exponent for key selection; `None` = uniform (the paper's
    /// setting).
    pub zipf_alpha: Option<f64>,
}

impl Workload {
    /// A workload over `threads` threads and `key_space` keys with the
    /// paper's defaults (50% updates, 20% preload, 100 ms trials — pass
    /// `.duration(..)` for paper-length runs).
    pub fn new(threads: usize, key_space: u64) -> Self {
        Self {
            threads,
            key_space,
            update_ratio: 0.5,
            preload_fraction: 0.2,
            duration: Duration::from_millis(100),
            seed: 0x5eed_0001,
            pin: true,
            zipf_alpha: None,
        }
    }

    /// High contention: key space 2^8.
    pub fn hc(threads: usize) -> Self {
        Self::new(threads, 1 << 8)
    }

    /// Medium contention: key space 2^14.
    pub fn mc(threads: usize) -> Self {
        Self::new(threads, 1 << 14)
    }

    /// Low contention: key space 2^17, preloaded at 2.5%.
    pub fn lc(threads: usize) -> Self {
        let mut w = Self::new(threads, 1 << 17);
        w.preload_fraction = 0.025;
        w
    }

    /// Write-heavy: 50% requested updates.
    pub fn write_heavy(mut self) -> Self {
        self.update_ratio = 0.5;
        self
    }

    /// Read-heavy: 20% requested updates.
    pub fn read_heavy(mut self) -> Self {
        self.update_ratio = 0.2;
        self
    }

    /// Overrides the trial duration.
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables pinning (for constrained environments).
    pub fn no_pin(mut self) -> Self {
        self.pin = false;
        self
    }

    /// Draws keys Zipf(α)-distributed instead of uniformly (an extension
    /// beyond the paper's uniform workloads; ranks are scattered over the
    /// key space by a fixed odd multiplier so hot keys are not adjacent).
    pub fn zipf(mut self, alpha: f64) -> Self {
        self.zipf_alpha = Some(alpha);
        self
    }
}

/// What instrumentation each worker thread attaches.
#[derive(Clone)]
pub enum InstrMode {
    /// No recording: pure throughput.
    Off,
    /// Record into the given stats sink (heatmaps, Table 1, Fig. 5).
    Stats(Arc<AccessStats>),
    /// Stats plus a per-thread cache-hierarchy simulation (Table 2;
    /// per-thread private L3 slice model).
    StatsAndCache(Arc<AccessStats>),
    /// Stats plus a cache simulation whose L3 is *shared per NUMA node*:
    /// `numa_of[t]` selects thread `t`'s socket cache in `l3s`.
    StatsAndSharedCache {
        /// The stats sink.
        stats: Arc<AccessStats>,
        /// One shared L3 per NUMA node.
        l3s: Arc<Vec<Arc<Mutex<Cache>>>>,
        /// Thread → NUMA node.
        numa_of: Arc<Vec<usize>>,
    },
}

impl InstrMode {
    /// A shared-L3 mode for `threads` threads using the given assignment.
    pub fn shared_cache(stats: Arc<AccessStats>, numa_of: Vec<usize>) -> Self {
        let nodes = numa_of.iter().copied().max().unwrap_or(0) + 1;
        let l3s = Arc::new((0..nodes).map(|_| Hierarchy::shared_l3_xeon()).collect());
        InstrMode::StatsAndSharedCache {
            stats,
            l3s,
            numa_of: Arc::new(numa_of),
        }
    }

    fn ctx_for(&self, thread: u16) -> ThreadCtx {
        match self {
            InstrMode::Off => ThreadCtx::plain(thread),
            InstrMode::Stats(stats) => ThreadCtx::recording(thread, Arc::clone(stats)),
            InstrMode::StatsAndCache(stats) => ThreadCtx::recording(thread, Arc::clone(stats))
                .with_cache_sim(Hierarchy::xeon_8275cl()),
            InstrMode::StatsAndSharedCache {
                stats,
                l3s,
                numa_of,
            } => {
                let node = numa_of
                    .get(thread as usize)
                    .copied()
                    .unwrap_or(0)
                    .min(l3s.len() - 1);
                let (l1, l2) = Hierarchy::xeon_l1_l2();
                ThreadCtx::recording(thread, Arc::clone(stats)).with_cache_sim(
                    Hierarchy::with_shared_l3(l1, l2, Arc::clone(&l3s[node])),
                )
            }
        }
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Total completed operations across all threads.
    pub total_ops: u64,
    /// Successful (effective) updates across all threads.
    pub effective_updates: u64,
    /// Measured wall time.
    pub elapsed: Duration,
    /// Per-thread completed operations.
    pub per_thread_ops: Vec<u64>,
    /// Aggregated cache-simulation counters (when enabled).
    pub cache: MissCounts,
    /// How many threads were successfully pinned.
    pub pinned: usize,
}

impl TrialResult {
    /// The paper's reported quantity: total operations per millisecond.
    pub fn ops_per_ms(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1000.0
    }

    /// Percentage of operations that were effective updates.
    pub fn effective_update_pct(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            100.0 * self.effective_updates as f64 / self.total_ops as f64
        }
    }
}

/// Mean/std summary over several trials (the paper averages 5 runs).
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Per-run throughput (ops/ms).
    pub runs: Vec<f64>,
    /// Mean throughput.
    pub mean_ops_per_ms: f64,
    /// Sample standard deviation of the throughput.
    pub stddev: f64,
    /// Mean effective update percentage.
    pub mean_effective_update_pct: f64,
}

/// Runs the Synchrobench `-f 1` procedure once against `map`.
///
/// Preloads `preload_fraction * key_space` distinct keys (spread across all
/// worker threads so node ownership matches steady state), then runs timed
/// random operations: with probability `update_ratio` an update (alternating
/// matched insert/remove per thread — the effective-update heuristic),
/// otherwise a `contains`.
pub fn run_trial<M: ConcurrentMap<u64, u64>>(
    map: &M,
    workload: &Workload,
    instr: &InstrMode,
) -> TrialResult {
    assert!(workload.threads > 0 && workload.key_space > 1);
    let topology = Topology::detect_or_paper();
    let placement = Placement::new(&topology, workload.threads);
    let preload_target = (workload.key_space as f64 * workload.preload_fraction) as u64;
    let preloaded = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(workload.threads + 1);
    let pinned = AtomicU64::new(0);

    let results: Vec<(u64, u64, Option<MissCounts>)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..workload.threads as u16)
            .map(|t| {
                let map = &map;
                let stop = &stop;
                let preloaded = &preloaded;
                let start_barrier = &start_barrier;
                let pinned = &pinned;
                let placement = &placement;
                let instr = instr.clone();
                s.spawn(move || {
                    if workload.pin
                        && numa::pin_current_thread(&placement.assignment(t as usize))
                    {
                        pinned.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut rng =
                        SmallRng::seed_from_u64(workload.seed ^ ((t as u64 + 1) * 0x9E37));
                    let zipf = workload
                        .zipf_alpha
                        .map(|a| crate::zipf::Zipf::new(workload.key_space, a));
                    let key_space = workload.key_space;
                    let draw_key = move |rng: &mut SmallRng| -> u64 {
                        match &zipf {
                            // Scatter ranks over the ordered key space;
                            // an odd multiplier is a bijection modulo the
                            // power-of-two key spaces the scenarios use.
                            Some(z) => z.sample(rng).wrapping_mul(0x9E37_79B1) % key_space,
                            None => rng.gen_range(0..key_space),
                        }
                    };
                    let mut handle = map.pin(instr.ctx_for(t));
                    // Preload phase: all threads insert until the target
                    // cardinality is reached.
                    while preloaded.load(Ordering::Relaxed) < preload_target {
                        let k = draw_key(&mut rng);
                        if handle.insert(k, k) {
                            preloaded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    start_barrier.wait();
                    // Measured phase.
                    let mut ops = 0u64;
                    let mut effective = 0u64;
                    let mut last_inserted: Option<u64> = None;
                    while !stop.load(Ordering::Relaxed) {
                        // Check the stop flag every few ops via batching.
                        for _ in 0..32 {
                            let p: f64 = rng.gen();
                            if p < workload.update_ratio {
                                match last_inserted.take() {
                                    None => {
                                        let k = draw_key(&mut rng);
                                        if handle.insert(k, k) {
                                            effective += 1;
                                            last_inserted = Some(k);
                                        }
                                    }
                                    Some(k) => {
                                        if handle.remove(&k) {
                                            effective += 1;
                                        }
                                    }
                                }
                            } else {
                                let k = draw_key(&mut rng);
                                let _ = handle.contains(&k);
                            }
                            ops += 1;
                        }
                    }
                    let cache = handle.ctx().cache_counts();
                    (ops, effective, cache)
                })
            })
            .collect();
        // Release the measured phase and time it.
        start_barrier.wait();
        let t0 = Instant::now();
        while t0.elapsed() < workload.duration {
            std::thread::sleep(Duration::from_millis(1).min(workload.duration));
        }
        stop.store(true, Ordering::Relaxed);
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let per_thread_ops: Vec<u64> = results.iter().map(|(o, _, _)| *o).collect();
    let cache = results
        .iter()
        .filter_map(|(_, _, c)| *c)
        .fold(MissCounts::default(), |acc, c| acc.merge(&c));
    TrialResult {
        total_ops: per_thread_ops.iter().sum(),
        effective_updates: results.iter().map(|(_, e, _)| *e).sum(),
        elapsed: workload.duration,
        per_thread_ops,
        cache,
        pinned: pinned.load(Ordering::Relaxed) as usize,
    }
}

/// Runs `runs` trials, each against a freshly built structure (the paper:
/// "each trial is an average of 5 runs").
pub fn run_trials<M, F>(factory: F, workload: &Workload, runs: usize) -> TrialSummary
where
    M: ConcurrentMap<u64, u64>,
    F: Fn() -> M,
{
    assert!(runs > 0);
    let mut throughputs = Vec::with_capacity(runs);
    let mut effective = Vec::with_capacity(runs);
    for r in 0..runs {
        let map = factory();
        let w = workload.clone().seed(workload.seed.wrapping_add(r as u64));
        let res = run_trial(&map, &w, &InstrMode::Off);
        throughputs.push(res.ops_per_ms());
        effective.push(res.effective_update_pct());
    }
    let mean = throughputs.iter().sum::<f64>() / runs as f64;
    let var = if runs > 1 {
        throughputs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (runs - 1) as f64
    } else {
        0.0
    };
    TrialSummary {
        mean_ops_per_ms: mean,
        stddev: var.sqrt(),
        mean_effective_update_pct: effective.iter().sum::<f64>() / runs as f64,
        runs: throughputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipgraph::{GraphConfig, LayeredMap};

    fn quick(threads: usize) -> Workload {
        Workload::new(threads, 1 << 8)
            .duration(Duration::from_millis(30))
            .no_pin()
    }

    #[test]
    fn trial_produces_ops() {
        let map: LayeredMap<u64, u64> =
            LayeredMap::new(GraphConfig::new(2).lazy(true).chunk_capacity(4096));
        let res = run_trial(&map, &quick(2), &InstrMode::Off);
        assert!(res.total_ops > 0);
        assert!(res.ops_per_ms() > 0.0);
        assert_eq!(res.per_thread_ops.len(), 2);
        assert!(res.effective_update_pct() > 0.0);
        assert!(res.effective_update_pct() <= 50.0 + 1.0);
    }

    #[test]
    fn preload_reaches_target() {
        let map: LayeredMap<u64, u64> =
            LayeredMap::new(GraphConfig::new(2).chunk_capacity(4096));
        let w = quick(2);
        let _ = run_trial(&map, &w, &InstrMode::Off);
        // After the run the structure holds roughly the preload +- churn;
        // at minimum it is non-empty and within the key space.
        let ctx = ThreadCtx::plain(0);
        let keys = map.shared().keys(&ctx);
        assert!(!keys.is_empty());
        assert!(keys.iter().all(|&k| k < w.key_space));
    }

    #[test]
    fn stats_instrumentation_collects() {
        let map: LayeredMap<u64, u64> =
            LayeredMap::new(GraphConfig::new(2).lazy(true).chunk_capacity(4096));
        let stats = AccessStats::new(2);
        let res = run_trial(&map, &quick(2), &InstrMode::Stats(Arc::clone(&stats)));
        assert!(res.total_ops > 0);
        assert!(stats.totals().ops > 0);
        assert!(stats.reads().total() > 0);
    }

    #[test]
    fn cache_sim_instrumentation_counts() {
        let map: LayeredMap<u64, u64> =
            LayeredMap::new(GraphConfig::new(2).chunk_capacity(4096));
        let stats = AccessStats::new(2);
        let res = run_trial(&map, &quick(2), &InstrMode::StatsAndCache(stats));
        assert!(res.cache.accesses > 0);
        assert!(res.cache.l1 <= res.cache.accesses);
    }

    #[test]
    fn run_trials_averages() {
        let s = run_trials(
            || {
                LayeredMap::<u64, u64>::new(GraphConfig::new(2).lazy(true).chunk_capacity(4096))
            },
            &quick(2),
            3,
        );
        assert_eq!(s.runs.len(), 3);
        assert!(s.mean_ops_per_ms > 0.0);
        assert!(s.stddev >= 0.0);
    }

    #[test]
    fn scenario_presets_match_paper() {
        assert_eq!(Workload::hc(4).key_space, 1 << 8);
        assert_eq!(Workload::mc(4).key_space, 1 << 14);
        let lc = Workload::lc(4);
        assert_eq!(lc.key_space, 1 << 17);
        assert!((lc.preload_fraction - 0.025).abs() < 1e-9);
        assert!((Workload::hc(4).write_heavy().update_ratio - 0.5).abs() < 1e-9);
        assert!((Workload::hc(4).read_heavy().update_ratio - 0.2).abs() < 1e-9);
    }
}
