//! A Synchrobench-equivalent testing harness.
//!
//! The paper's experiments "follow exactly the testing procedure of
//! Synchrobench \[18\] with the flag `-f 1`": timed trials of uniformly
//! random operations, where the requested percentage of *update* operations
//! is matched as closely as possible and only *successful* inserts/removes
//! count as (effective) updates. This crate reimplements that procedure:
//!
//! * [`Workload`] — key space, requested update ratio, preload fraction,
//!   trial duration (the paper's scenarios are provided as constructors:
//!   [`Workload::hc`]/[`Workload::mc`]/[`Workload::lc`] × write-heavy 50% /
//!   read-heavy 20%),
//! * [`run_trial`] — spawns the threads (pinned socket-fill-first via
//!   [`numa::Placement`]), preloads, runs for the trial duration, and
//!   reports total operations per millisecond plus the effective-update
//!   percentage,
//! * [`run_trials`] — the paper's "average of 5 runs", each on a fresh
//!   structure,
//! * [`registry`] — every structure of the paper's evaluation by its
//!   figure-legend name (`layered_map_sg`, `lazy_layered_sg`, ...,
//!   `rotating`, `nohotspot`, `numask`), so benches and examples can sweep
//!   them uniformly.

//! * [`stress`] — a history-recording stress runner that checks every
//!   per-key history for linearizability, with a deterministic-schedule
//!   mode (`--features deterministic`) that replays and shrinks failures
//!   to a minimal seed + operation trace.

mod latency;
pub mod registry;
pub mod stress;
mod workload;
mod zipf;

pub use latency::{run_latency_trial, LatencySummary};
pub use stress::{stress_named, FailureReport, OpRecord, PlannedOp, StressConfig};
pub use workload::{run_trial, run_trials, InstrMode, TrialResult, TrialSummary, Workload};
pub use zipf::Zipf;
