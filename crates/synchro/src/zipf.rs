//! A Zipfian key sampler.
//!
//! The paper's evaluation draws keys uniformly; real key-value workloads
//! are usually skewed. This sampler extends the harness with
//! Zipf-distributed keys (rejection-inversion sampling, Hörmann & Derflinger
//! 1996 — the same approach as YCSB's generator), so the skew sensitivity
//! of the structures can be measured (`benches/zipf_throughput.rs`).

use rand::Rng;

/// A Zipf(α) sampler over `0..n` (rank 0 is the most popular key).
///
/// # Example
///
/// ```
/// use synchro::Zipf;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let z = Zipf::new(1000, 0.99);
/// let k = z.sample(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    // Precomputed constants of the rejection-inversion method.
    h_x1: f64,
    h_half: f64,
    s: f64,
}

impl Zipf {
    /// Builds a sampler over `0..n` with exponent `alpha` (> 0; YCSB uses
    /// 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha <= 0` or `alpha == 1` is fine but
    /// non-finite alphas are rejected.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let h = |x: f64| -> f64 {
            if (alpha - 1.0).abs() < 1e-12 {
                (x).ln()
            } else {
                (x).powf(1.0 - alpha) / (1.0 - alpha)
            }
        };
        let h_x1 = h(1.5) - 1.0f64.powf(-alpha);
        let h_half = h(0.5);
        let s = 2.0 - Self::h_inv_static(alpha, h(2.5) - 2.0f64.powf(-alpha));
        Self {
            n,
            alpha,
            h_x1,
            h_half,
            s,
        }
    }

    fn h(&self, x: f64) -> f64 {
        if (self.alpha - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            x.powf(1.0 - self.alpha) / (1.0 - self.alpha)
        }
    }

    fn h_inv_static(alpha: f64, x: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (x * (1.0 - alpha)).powf(1.0 / (1.0 - alpha))
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(self.alpha, x)
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let n = self.n as f64;
        let h_n = self.h(n + 0.5);
        loop {
            let u: f64 = rng.gen::<f64>() * (h_n - self.h_half) + self.h_half;
            let x = self.h_inv(u);
            let k = x.clamp(1.0, n).round();
            if k - x <= self.s || u >= self.h(k + 0.5) - (k).powf(-self.alpha) + self.h_x1 {
                return (k as u64 - 1).min(self.n - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn frequencies(n: u64, alpha: f64, samples: usize) -> Vec<u64> {
        let z = Zipf::new(n, alpha);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let counts = frequencies(1000, 0.99, 100_000);
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must dominate");
        // Head heaviness: top-10 ranks take a large share under α≈1.
        let head: u64 = counts[..10].iter().sum();
        assert!(head > 100_000 / 4, "top-10 share too small: {head}");
    }

    #[test]
    fn frequency_ratio_tracks_power_law() {
        // f(1)/f(2) ≈ 2^alpha for large samples.
        let counts = frequencies(100, 1.0, 400_000);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.6..2.6).contains(&ratio), "f(1)/f(2) = {ratio}");
    }

    #[test]
    fn small_alpha_is_flatter() {
        let skewed = frequencies(100, 1.2, 100_000);
        let flat = frequencies(100, 0.2, 100_000);
        let skew_head = skewed[0] as f64 / 100_000.0;
        let flat_head = flat[0] as f64 / 100_000.0;
        assert!(skew_head > flat_head * 3.0, "{skew_head} vs {flat_head}");
    }

    #[test]
    fn n_one_always_returns_zero() {
        let z = Zipf::new(1, 0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_keyspace_rejected() {
        let _ = Zipf::new(0, 0.99);
    }
}
