//! Priority queues layered over skip graphs.
//!
//! The paper's appendix reports preliminary results for priority queues
//! built with the layering technique and names both *exact* and *relaxed*
//! designs as applicable. This crate provides both:
//!
//! * [`LayeredPriorityQueue`] — an exact concurrent priority queue:
//!   `insert` goes through the layered map (thread-local jump + partitioned
//!   skip graph), `pop_min` linearizes a removal on the first live node of
//!   the bottom list;
//! * a *relaxed* `pop_approx_min` in the spirit of SprayList-style
//!   relaxation: each caller walks a small random prefix of the bottom list
//!   before attempting removal, spreading contention away from the head at
//!   the cost of exactness.
//!
//! # Example
//!
//! ```
//! use sg_pqueue::LayeredPriorityQueue;
//! use instrument::ThreadCtx;
//!
//! let pq: LayeredPriorityQueue<u64, &str> = LayeredPriorityQueue::new(2);
//! let mut h = pq.register(ThreadCtx::plain(0));
//! h.push(3, "three");
//! h.push(1, "one");
//! h.push(2, "two");
//! assert_eq!(h.pop_min(), Some((1, "one")));
//! assert_eq!(h.pop_min(), Some((2, "two")));
//! assert_eq!(h.pop_min(), Some((3, "three")));
//! assert_eq!(h.pop_min(), None);
//! ```

use instrument::ThreadCtx;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skipgraph::{GraphConfig, LayeredHandle, LayeredMap};
use std::hash::Hash;

/// An exact concurrent priority queue over a lazy layered skip graph.
///
/// Keys are priorities (smaller = higher priority) and must be unique, as
/// in skip-list-based priority queues with set semantics; `push` on a
/// present key fails.
pub struct LayeredPriorityQueue<K, V> {
    map: LayeredMap<K, V>,
}

impl<K, V> LayeredPriorityQueue<K, V>
where
    K: Ord + Hash + Clone,
{
    /// Builds a queue for `threads` participating threads: a lazy layered
    /// skip graph with a zero commission period (queue minima drain
    /// permanently, so deferring retirement would only lengthen the dead
    /// prefix that `pop_min` walks) and the shared hash index on, so
    /// membership tests ([`PriorityQueueHandle::contains`]) and the
    /// `get`-then-`remove` race of `pop_approx_min` resolve in O(1)
    /// instead of descending the skip graph.
    pub fn new(threads: usize) -> Self {
        Self::with_config(
            GraphConfig::new(threads)
                .lazy(true)
                .commission_cycles(0)
                .hash_index(true),
        )
    }

    /// Builds a queue with an explicit shared-structure configuration.
    pub fn with_config(config: GraphConfig) -> Self {
        Self {
            map: LayeredMap::new(config),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self, ctx: ThreadCtx) -> PriorityQueueHandle<'_, K, V> {
        let seed = 0x9e37_79b9 ^ ((ctx.id() as u64) << 17);
        PriorityQueueHandle {
            handle: self.map.register(ctx),
            pq: self,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying layered map (for inspection).
    pub fn map(&self) -> &LayeredMap<K, V> {
        &self.map
    }
}

impl<K, V> std::fmt::Debug for LayeredPriorityQueue<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayeredPriorityQueue").finish_non_exhaustive()
    }
}

/// Per-thread handle to a [`LayeredPriorityQueue`].
pub struct PriorityQueueHandle<'q, K, V> {
    handle: LayeredHandle<'q, K, V>,
    pq: &'q LayeredPriorityQueue<K, V>,
    rng: SmallRng,
}

impl<'q, K, V> PriorityQueueHandle<'q, K, V>
where
    K: Ord + Hash + Clone,
    V: Clone,
{
    /// Inserts an element; `false` if the priority is already enqueued.
    pub fn push(&mut self, priority: K, value: V) -> bool {
        self.handle.insert(priority, value)
    }

    /// Removes and returns the minimum-priority element.
    pub fn pop_min(&mut self) -> Option<(K, V)> {
        self.pq.map.shared().pop_min(self.handle.ctx())
    }

    /// Relaxed removal: walks a uniformly random number of live candidates
    /// in `0..spray_width` from the head before attempting removal,
    /// trading exactness for reduced head contention (SprayList-style).
    /// Returns an element within roughly `spray_width` of the minimum.
    pub fn pop_approx_min(&mut self, spray_width: usize) -> Option<(K, V)> {
        let skip = if spray_width <= 1 {
            0
        } else {
            self.rng.gen_range(0..spray_width)
        };
        let shared = self.pq.map.shared();
        let ctx = self.handle.ctx();
        // Collect up to skip+1 candidate keys from the snapshot prefix.
        let candidates: Vec<K> = shared
            .iter_snapshot(ctx)
            .take(skip + 1)
            .map(|(k, _)| k.clone())
            .collect();
        // Try the chosen candidate first, then fall back toward the head,
        // then to an exact pop.
        for k in candidates.iter().rev() {
            if let Some(v) = self.try_take(k) {
                return Some((k.clone(), v));
            }
        }
        self.pop_min()
    }

    /// Whether `priority` is currently enqueued. With the hash index on
    /// (the [`LayeredPriorityQueue::new`] default) this is an O(1) point
    /// read even for priorities inserted by other threads.
    pub fn contains(&mut self, priority: &K) -> bool {
        self.handle.contains(priority)
    }

    /// Whether the queue appears empty.
    pub fn is_empty(&mut self) -> bool {
        self.peek_min().is_none()
    }

    /// The current minimum without removing it (racy by nature).
    pub fn peek_min(&mut self) -> Option<(K, V)> {
        let shared = self.pq.map.shared();
        shared
            .iter_snapshot(self.handle.ctx())
            .next()
            .map(|(k, v)| (k.clone(), v.clone()))
    }

    fn try_take(&mut self, key: &K) -> Option<V> {
        let v = self.handle.get(key)?;
        if self.handle.remove(key) {
            Some(v)
        } else {
            None
        }
    }
}

impl<'q, K, V> std::fmt::Debug for PriorityQueueHandle<'q, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PriorityQueueHandle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ordered_drain() {
        let pq: LayeredPriorityQueue<u64, u64> = LayeredPriorityQueue::new(2);
        let mut h = pq.register(ThreadCtx::plain(0));
        for k in [5u64, 1, 9, 3, 7] {
            assert!(h.push(k, k * 10));
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
        assert!(h.is_empty());
    }

    #[test]
    fn duplicate_priority_rejected() {
        let pq: LayeredPriorityQueue<u64, ()> = LayeredPriorityQueue::new(2);
        let mut h = pq.register(ThreadCtx::plain(0));
        assert!(h.push(1, ()));
        assert!(!h.push(1, ()));
    }

    #[test]
    fn peek_does_not_remove() {
        let pq: LayeredPriorityQueue<u64, u64> = LayeredPriorityQueue::new(2);
        let mut h = pq.register(ThreadCtx::plain(0));
        h.push(4, 40);
        assert_eq!(h.peek_min(), Some((4, 40)));
        assert_eq!(h.peek_min(), Some((4, 40)));
        assert_eq!(h.pop_min(), Some((4, 40)));
    }

    #[test]
    fn spray_pop_returns_near_minimum() {
        let pq: LayeredPriorityQueue<u64, ()> = LayeredPriorityQueue::new(2);
        let mut h = pq.register(ThreadCtx::plain(0));
        for k in 0..100u64 {
            h.push(k, ());
        }
        let width = 8;
        for _ in 0..20 {
            let (k, _) = h.pop_approx_min(width).expect("non-empty");
            // Relaxation bound: within the first `width` live elements of a
            // 100-element queue, so never later than key 20 + width.
            assert!(k < 40, "spray returned {k}, far from the minimum");
        }
    }

    #[test]
    fn cross_thread_contains_rides_the_hash_index() {
        use instrument::AccessStats;
        let pq: LayeredPriorityQueue<u64, u64> = LayeredPriorityQueue::new(2);
        let mut producer = pq.register(ThreadCtx::plain(0));
        for k in 0..32u64 {
            assert!(producer.push(k, k));
        }
        // Thread 1 never inserted, so its thread-local layer misses and
        // every membership test goes through the shared structure — with
        // the index on, as O(1) hits instead of descents.
        let stats = AccessStats::new(2);
        let mut observer = pq.register(ThreadCtx::recording(1, stats.clone()));
        for k in 0..32u64 {
            assert!(observer.contains(&k), "key {k}");
        }
        assert!(!observer.contains(&99));
        let t = stats.totals();
        assert!(
            t.index_hits >= 32,
            "cross-thread contains bypassed the index: {} hits",
            t.index_hits
        );
    }

    #[test]
    fn concurrent_producers_consumers() {
        const T: usize = 4;
        let pq: LayeredPriorityQueue<u64, u64> = LayeredPriorityQueue::new(T);
        let popped: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..T as u16)
                .map(|t| {
                    let pq = &pq;
                    s.spawn(move || {
                        let mut h = pq.register(ThreadCtx::plain(t));
                        let mut got = Vec::new();
                        for i in 0..500u64 {
                            let key = i * T as u64 + t as u64;
                            assert!(h.push(key, key));
                            if i % 2 == 1 {
                                if let Some((k, _)) = h.pop_min() {
                                    got.push(k);
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // No element popped twice.
        let mut all: Vec<u64> = popped.into_iter().flatten().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "an element was popped twice");
        // Remaining elements = pushed - popped.
        let mut h = pq.register(ThreadCtx::plain(0));
        let mut remaining = BTreeSet::new();
        while let Some((k, _)) = h.pop_min() {
            assert!(remaining.insert(k), "duplicate in drain");
        }
        assert_eq!(remaining.len() + n, T * 500);
    }
}
