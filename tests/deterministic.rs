//! Deterministic-schedule lanes (`cargo test --features deterministic`).
//!
//! Under the `deterministic` feature every `TaggedAtomic` access in the
//! data structures is a yield point of the seeded cooperative scheduler
//! (`skipgraph::det`), so a whole concurrent execution — every
//! interleaving decision, every operation result, every history — is a
//! pure function of the `(workload seed, schedule seed, policy)` triple.
//!
//! Replay a failure printed by the stress runner with e.g.
//! `SCHEDULE_SEED=1234 cargo test --features deterministic pct_schedules`.
// Not meaningful with the broken-on-purpose lazy remove compiled in.
#![cfg(all(feature = "deterministic", not(feature = "bug-injection")))]

use skipgraph::det::{round_robin_family, DetConfig, Policy};
use synchro::stress::{
    plan_workload, records_named_det, stress_named_det, StressConfig, DET_STRUCTURES,
};

fn env_seed(default: u64) -> u64 {
    std::env::var("SCHEDULE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Small deterministic workload: 3 threads keep scheduling interesting
/// while each run stays well under the step bound.
fn small() -> StressConfig {
    StressConfig {
        threads: 3,
        key_space: 8,
        ops_per_thread: 24,
        update_pct: 70,
        preload: true,
        seed: 42,
    }
}

#[test]
fn same_seed_replays_byte_for_byte() {
    let cfg = small();
    let plans = plan_workload(&cfg);
    let det = DetConfig::new(
        env_seed(0xD15C0),
        Policy::Pct {
            change_points: 8,
            expected_steps: 20_000,
        },
    );
    let (r1, t1) = records_named_det("lazy_layered_sg", &cfg, &plans, &det);
    let (r2, t2) = records_named_det("lazy_layered_sg", &cfg, &plans, &det);
    assert_eq!(t1, t2, "schedule traces diverged for identical seeds");
    assert_eq!(r1, r2, "operation records diverged for identical seeds");
    assert!(!t1.decisions.is_empty());
}

#[test]
fn different_schedule_seeds_explore_different_interleavings() {
    let cfg = small();
    let plans = plan_workload(&cfg);
    let mk = |seed| {
        DetConfig::new(
            seed,
            Policy::Pct {
                change_points: 12,
                expected_steps: 20_000,
            },
        )
    };
    let (_, t1) = records_named_det("skipgraph", &cfg, &plans, &mk(1));
    let (_, t2) = records_named_det("skipgraph", &cfg, &plans, &mk(2));
    assert_ne!(t1.decisions, t2.decisions, "PCT seeds 1 and 2 gave the same schedule");
}

#[test]
fn round_robin_family_is_clean_on_every_det_structure() {
    // Bounded-exhaustive sweep of small round-robin schedules: every
    // quantum × starting thread, on every deterministically schedulable
    // structure, with a tiny workload.
    let cfg = StressConfig {
        threads: 2,
        key_space: 4,
        ops_per_thread: 10,
        update_pct: 80,
        preload: false,
        seed: 3,
    };
    for name in DET_STRUCTURES {
        for (seed, policy) in round_robin_family(cfg.threads, 3) {
            let det = DetConfig::new(seed, policy);
            stress_named_det(name, &cfg, &det)
                .unwrap_or_else(|e| panic!("{name} under {:?}: {e}", det.policy));
        }
    }
}

#[test]
fn pct_schedules_linearize() {
    let cfg = small();
    let base = env_seed(100);
    for name in ["lazy_layered_sg", "layered_map_sg", "skiplist", "harris_ll"] {
        for s in 0..6u64 {
            let det = DetConfig::new(
                base + s,
                Policy::Pct {
                    change_points: 10,
                    expected_steps: 30_000,
                },
            );
            stress_named_det(name, &cfg, &det)
                .unwrap_or_else(|e| panic!("{name} seed {}: {e}", base + s));
        }
    }
}

/// Deterministic-schedule stress of the epoch-based reclamation path:
/// a removal-heavy mix over a tiny key space so nodes are retired,
/// epochs advance through the facade atomics (the scheduler interleaves
/// the grace-period protocol), and freed slots are recycled under new
/// keys while other threads still hold generation-tagged hints to the
/// old incarnation. `ops_per_thread` is chosen to cross the reclaimer's
/// quiesce period several times per thread so collection actually runs
/// mid-workload, not just at teardown.
#[test]
fn reclaiming_layered_map_pct_and_round_robin_linearize() {
    // key_space × the checker's per-key cap must cover 3 × 200 ops.
    let cfg = StressConfig {
        threads: 3,
        key_space: 12,
        ops_per_thread: 200,
        update_pct: 90,
        preload: true,
        seed: 9,
    };
    let base = env_seed(500);
    for s in 0..4u64 {
        let det = DetConfig::new(
            base + s,
            Policy::Pct {
                change_points: 10,
                expected_steps: 60_000,
            },
        );
        stress_named_det("reclaim_layered_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("reclaim_layered_sg pct seed {}: {e}", base + s));
    }
    for quantum in [1u32, 3, 7] {
        let det = DetConfig::new(base, Policy::RoundRobin { quantum });
        stress_named_det("reclaim_layered_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("reclaim_layered_sg round-robin quantum {quantum}: {e}"));
    }
}

#[test]
fn trace_replay_reproduces_the_run() {
    let cfg = small();
    let plans = plan_workload(&cfg);
    let det = DetConfig::new(env_seed(77), Policy::RoundRobin { quantum: 5 });
    let (r1, t1) = records_named_det("lazy_layered_sg", &cfg, &plans, &det);
    let replay = DetConfig::new(
        det.seed,
        Policy::Replay {
            segments: t1.segments(),
        },
    );
    let (r2, t2) = records_named_det("lazy_layered_sg", &cfg, &plans, &replay);
    assert_eq!(t1.decisions, t2.decisions, "replay deviated from the recorded trace");
    assert_eq!(r1, r2, "replay produced different operation results");
}

/// Deterministic-schedule stress of the flat-combining batch executor:
/// 4 threads mapped 2 sockets × 2 threads (`batched_layered_sg` builds
/// `BatchConfig::uniform(4, 2)` in the registry), under both PCT and
/// round-robin policies. Every per-key history of the combined batches
/// must linearize — the combiner answering a foreign slot's operation is
/// just another linearization point for that submitter's op.
#[test]
fn batched_executor_pct_and_round_robin_linearize() {
    let cfg = StressConfig {
        threads: 4,
        key_space: 10,
        ops_per_thread: 25,
        update_pct: 70,
        preload: true,
        seed: 11,
    };
    let base = env_seed(500);
    for s in 0..4u64 {
        let det = DetConfig::new(
            base + s,
            Policy::Pct {
                change_points: 10,
                expected_steps: 60_000,
            },
        );
        stress_named_det("batched_layered_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("pct seed {}: {e}", base + s));
    }
    for quantum in [1u32, 3, 7] {
        let det = DetConfig::new(base, Policy::RoundRobin { quantum });
        stress_named_det("batched_layered_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("round-robin quantum {quantum}: {e}"));
    }
}

/// Deterministic-schedule stress of the shared point-read hash index:
/// an update-heavy mix over a tiny key space so inserts/removes churn
/// index entries (publish-after-link vs invalidate racing reads through
/// the index fast path), with the scheduler interleaving the entry CAS
/// protocol against the node-state re-checks. A stale index read
/// surviving validation would surface as a non-linearizable per-key
/// history.
#[test]
fn hashed_index_pct_and_round_robin_linearize() {
    let cfg = StressConfig {
        threads: 3,
        key_space: 10,
        ops_per_thread: 120,
        update_pct: 80,
        preload: true,
        seed: 13,
    };
    let base = env_seed(700);
    for s in 0..4u64 {
        let det = DetConfig::new(
            base + s,
            Policy::Pct {
                change_points: 10,
                expected_steps: 60_000,
            },
        );
        stress_named_det("hashed_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("hashed_sg pct seed {}: {e}", base + s));
    }
    for quantum in [1u32, 3, 7] {
        let det = DetConfig::new(base, Policy::RoundRobin { quantum });
        stress_named_det("hashed_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("hashed_sg round-robin quantum {quantum}: {e}"));
    }
}

/// Deterministic-schedule stress of the anchor-granular blocked map:
/// `anchor_blocked_sg` runs the blocked map under a compacting merge
/// threshold and left-biased splits, so schedules interleave freezes,
/// chain rebuilds, and merge unlinks against point ops that route
/// through the per-thread anchor cache. A cached anchor surviving its
/// covering check past a split (the exact fault the bug-injection arm
/// plants) would surface as a lost or misplaced operation in the per-key
/// histories.
#[test]
fn anchor_blocked_pct_and_round_robin_linearize() {
    let cfg = StressConfig {
        threads: 3,
        key_space: 10,
        ops_per_thread: 120,
        update_pct: 80,
        preload: true,
        seed: 23,
    };
    let base = env_seed(1100);
    for s in 0..4u64 {
        let det = DetConfig::new(
            base + s,
            Policy::Pct {
                change_points: 10,
                expected_steps: 60_000,
            },
        );
        stress_named_det("anchor_blocked_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("anchor_blocked_sg pct seed {}: {e}", base + s));
    }
    for quantum in [1u32, 3, 7] {
        let det = DetConfig::new(base, Policy::RoundRobin { quantum });
        stress_named_det("anchor_blocked_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("anchor_blocked_sg round-robin quantum {quantum}: {e}"));
    }
}

/// Deterministic-schedule stress of the per-socket replication layer:
/// 4 threads on 2 synthetic sockets (`replicated_sg` builds a tiny
/// 16-slot log with a lag bound of 12, so schedules reach wraparound and
/// backpressure helping). The scheduler interleaves appends, replay-lease
/// handoffs, the NR read catch-up, and the slot seq/result stamps — a
/// read served from a replica whose tail had not passed the mapped log's
/// head (or a lost/duplicated outcome across slot reuse) would surface as
/// a non-linearizable per-key history.
#[test]
fn replicated_pct_and_round_robin_linearize() {
    let cfg = StressConfig {
        threads: 4,
        key_space: 10,
        ops_per_thread: 25,
        update_pct: 70,
        preload: true,
        seed: 17,
    };
    let base = env_seed(900);
    for s in 0..4u64 {
        let det = DetConfig::new(
            base + s,
            Policy::Pct {
                change_points: 10,
                expected_steps: 60_000,
            },
        );
        stress_named_det("replicated_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("replicated_sg pct seed {}: {e}", base + s));
    }
    for quantum in [1u32, 3, 7] {
        let det = DetConfig::new(base, Policy::RoundRobin { quantum });
        stress_named_det("replicated_sg", &cfg, &det)
            .unwrap_or_else(|e| panic!("replicated_sg round-robin quantum {quantum}: {e}"));
    }
}

/// Deterministic-schedule stress of the adaptation subsystem: the
/// `adaptive_sg` lane runs the replicated map with an 8-op sensor window
/// and zero dwell, so the write-ratio gate downshifts to the single
/// structure and upshifts back *mid-schedule*. The scheduler interleaves
/// the drain-then-redirect downshift (and the rebuild-replicas upshift)
/// against concurrent reads and log appends — a read served from replica
/// 0 before the drain completed, or a write lost across the generation
/// bump, would surface as a non-linearizable per-key history. Two mixes:
/// one update-heavy (holds the gate mostly single), one near the band
/// edges so the gate oscillates.
#[test]
fn adaptive_transitions_pct_and_round_robin_linearize() {
    let base = env_seed(1300);
    for (seed, update_pct) in [(19u64, 70u32), (29, 45)] {
        let cfg = StressConfig {
            threads: 4,
            key_space: 10,
            ops_per_thread: 25,
            update_pct,
            preload: true,
            seed,
        };
        for s in 0..4u64 {
            let det = DetConfig::new(
                base + s,
                Policy::Pct {
                    change_points: 10,
                    expected_steps: 60_000,
                },
            );
            stress_named_det("adaptive_sg", &cfg, &det).unwrap_or_else(|e| {
                panic!("adaptive_sg update_pct {update_pct} pct seed {}: {e}", base + s)
            });
        }
        for quantum in [1u32, 3, 7] {
            let det = DetConfig::new(base, Policy::RoundRobin { quantum });
            stress_named_det("adaptive_sg", &cfg, &det).unwrap_or_else(|e| {
                panic!("adaptive_sg update_pct {update_pct} round-robin quantum {quantum}: {e}")
            });
        }
    }
}

/// Long-running sweep; run explicitly with
/// `cargo test --features deterministic -- --ignored long_det_sweep`.
#[test]
#[ignore = "long-running: hundreds of seeded schedules over all det structures"]
fn long_det_sweep() {
    let cfg = StressConfig {
        threads: 4,
        key_space: 10,
        ops_per_thread: 60,
        update_pct: 70,
        preload: true,
        seed: 9,
    };
    let base = env_seed(10_000);
    for name in DET_STRUCTURES {
        for s in 0..32u64 {
            let det = DetConfig::new(
                base + s,
                Policy::Pct {
                    change_points: 16,
                    expected_steps: 120_000,
                },
            );
            stress_named_det(name, &cfg, &det)
                .unwrap_or_else(|e| panic!("{name} seed {}: {e}", base + s));
        }
    }
}
