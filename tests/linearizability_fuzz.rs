//! Randomized linearizability fuzzing: proptest generates seeds and
//! configuration knobs; each case runs a concurrent chaos-scheduled
//! workload (yield injection at shared-memory accesses) and checks every
//! per-key history with the Wing & Gong checker.
//!
//! Complementary to `tests/linearizability.rs` (fixed seeds, all
//! structures): here the *schedules* and workload mixes are fuzzed on the
//! structure variants with the most protocol surface.
#![cfg(not(feature = "bug-injection"))]

use instrument::time::cycles;
use instrument::ThreadCtx;
use linearize::{check_keyed_histories, Event, Op};
use proptest::prelude::*;
use skipgraph::{ConcurrentMap, GraphConfig, LayeredMap};
use std::sync::Barrier;

const THREADS: usize = 3;

fn run_case(cfg: GraphConfig, seed: u64, keys: u64, ops: usize, yield_one_in: u32) {
    let map: LayeredMap<u64, u64> = LayeredMap::new(cfg.chunk_capacity(4096));
    let barrier = Barrier::new(THREADS);
    let history: Vec<(u64, Event)> = std::thread::scope(|s| {
        (0..THREADS as u16)
            .map(|t| {
                let map = &map;
                let barrier = &barrier;
                s.spawn(move || {
                    let ctx = ThreadCtx::chaos(t, seed ^ ((t as u64) << 8), yield_one_in);
                    let mut h = map.pin(ctx);
                    let mut events = Vec::with_capacity(ops);
                    let mut state = seed ^ ((t as u64 + 1) << 40) | 1;
                    barrier.wait();
                    for _ in 0..ops {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let k = state % keys;
                        let (op, s0, r, e0) = match state % 3 {
                            0 => {
                                let s0 = cycles();
                                let r = h.insert(k, k);
                                (Op::Insert, s0, r, cycles())
                            }
                            1 => {
                                let s0 = cycles();
                                let r = h.remove(&k);
                                (Op::Remove, s0, r, cycles())
                            }
                            _ => {
                                let s0 = cycles();
                                let r = h.contains(&k);
                                (Op::Contains, s0, r, cycles())
                            }
                        };
                        events.push((
                            k,
                            Event {
                                op,
                                result: r,
                                start: s0,
                                end: e0,
                            },
                        ));
                    }
                    events
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    check_keyed_histories(&history).expect("linearizable history");
    map.shared().check_invariants().expect("invariants");
}

proptest! {
    // Each case spawns threads; keep the count modest for CI time.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fuzz_lazy_layered(
        seed in any::<u64>(),
        keys in 8u64..64,
        yield_one_in in 2u32..10,
        commission in prop_oneof![Just(0u64), Just(1_000u64), Just(u64::MAX)],
    ) {
        run_case(
            GraphConfig::new(THREADS).lazy(true).commission_cycles(commission),
            seed,
            keys,
            120,
            yield_one_in,
        );
    }

    #[test]
    fn fuzz_eager_layered(
        seed in any::<u64>(),
        keys in 8u64..64,
        yield_one_in in 2u32..10,
    ) {
        run_case(GraphConfig::new(THREADS), seed, keys, 120, yield_one_in);
    }

    #[test]
    fn fuzz_sparse_variants(
        seed in any::<u64>(),
        keys in 8u64..48,
        lazy in any::<bool>(),
    ) {
        run_case(
            GraphConfig::new(THREADS).sparse(true).lazy(lazy),
            seed,
            keys,
            100,
            4,
        );
    }
}
