//! Tier-1 stress smoke: every registry structure runs a small mixed
//! workload under real threads and every per-key history linearizes.
//!
//! This is the always-on lane of the concurrency harness; the
//! deterministic-schedule lanes live in `tests/deterministic.rs` (behind
//! `--features deterministic`) and `tests/bug_catch.rs` (additionally
//! behind `--features bug-injection`).
#![cfg(not(feature = "bug-injection"))]

use synchro::registry::STRUCTURES;
use synchro::stress::{stress_named, StressConfig};

#[test]
fn every_structure_linearizes_smoke() {
    let cfg = StressConfig::smoke(0xBEEF);
    for name in STRUCTURES {
        let n = stress_named(name, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            n,
            cfg.threads as usize * cfg.ops_per_thread,
            "{name}: wrong record count"
        );
    }
}

#[test]
fn contended_preloaded_workload_linearizes() {
    let cfg = StressConfig::contended(7);
    for name in ["lazy_layered_sg", "skipgraph", "skiplist", "harris_ll"] {
        stress_named(name, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn several_seeds_on_the_lazy_variant() {
    for seed in 0..4u64 {
        let cfg = StressConfig::contended(seed);
        stress_named("lazy_layered_sg", &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
