//! Cross-crate integration tests: the harness drives every structure, the
//! instrumentation feeds the reports, the NUMA model feeds the membership
//! vectors and the locality classification — the full pipeline the
//! benchmarks rely on.
#![cfg(not(feature = "bug-injection"))]

use instrument::report::locality_summary;
use instrument::{AccessStats, ThreadCtx};
use layered_skipgraph::*;
use numa::{Placement, Topology};
use skipgraph::{ConcurrentMap, GraphConfig, LayeredMap, MapHandle};
use std::sync::Arc;
use std::time::Duration;
use synchro::registry::{run_named, STRUCTURES};
use synchro::{run_trial, InstrMode, Workload};

fn quick_workload(threads: usize) -> Workload {
    Workload::new(threads, 1 << 9)
        .duration(Duration::from_millis(25))
        .no_pin()
}

#[test]
fn harness_drives_every_structure_correctly() {
    // Beyond smoke: after each trial the structure's contents must be a
    // subset of the key space and internally consistent where we can check.
    for name in STRUCTURES {
        let w = quick_workload(3);
        let res = run_named(name, &w, &InstrMode::Off);
        assert!(res.total_ops > 0, "{name}");
        assert_eq!(res.per_thread_ops.len(), 3, "{name}");
        assert!(
            res.effective_update_pct() <= 55.0,
            "{name}: effective updates cannot exceed the requested ratio by much"
        );
    }
}

#[test]
fn instrumented_run_produces_consistent_metrics() {
    let threads = 4;
    let stats = AccessStats::new(threads);
    let map: LayeredMap<u64, u64> =
        LayeredMap::new(GraphConfig::new(threads).lazy(true).chunk_capacity(4096));
    let w = quick_workload(threads);
    let res = run_trial(&map, &w, &InstrMode::Stats(Arc::clone(&stats)));
    let totals = stats.totals();
    // Every measured harness op was recorded; the recorded count also
    // includes the preload inserts, so it is at least the measured total.
    assert!(totals.ops >= res.total_ops);
    // CAS failures never exceed attempts; searches traversed something.
    assert!(totals.cas_failures <= totals.cas_attempts);
    assert!(totals.searches > 0);
    // Locality summary is well-formed under both real and modeled splits.
    let numa_of: Vec<usize> = (0..threads).map(|t| usize::from(t >= threads / 2)).collect();
    let s = locality_summary(&stats, &numa_of);
    assert!(s.cas_success_rate > 0.0 && s.cas_success_rate <= 1.0);
    assert!(s.local_reads_per_op + s.remote_reads_per_op > 0.0);
}

#[test]
fn membership_vectors_follow_the_placement_distance() {
    // End-to-end: topology -> placement -> layered map membership. Threads
    // that the placement puts on the same core must share more lists than
    // threads across the socket boundary.
    let topo = Topology::paper_machine();
    let placement = Placement::new(&topo, 96);
    let map: LayeredMap<u64, u64> = LayeredMap::new(GraphConfig::new(96));
    let m0 = map.shared().membership_of(0);
    let m1 = map.shared().membership_of(1); // SMT sibling of 0
    let m95 = map.shared().membership_of(95); // other socket
    let max = map.config().max_level;
    let near = skipgraph::mvec::shared_levels(m0, m1, max);
    let far = skipgraph::mvec::shared_levels(m0, m95, max);
    assert!(near > far, "near={near} far={far}");
    assert_eq!(placement.assignment(0).numa_node, placement.assignment(1).numa_node);
    assert_ne!(
        placement.assignment(0).numa_node,
        placement.assignment(95).numa_node
    );
}

#[test]
fn cache_sim_mode_reports_misses() {
    let threads = 2;
    let stats = AccessStats::new(threads);
    let w = quick_workload(threads);
    let res = run_named("layered_map_sg", &w, &InstrMode::StatsAndCache(stats));
    assert!(res.cache.accesses > 0);
    assert!(res.cache.l1 <= res.cache.accesses);
    assert!(res.cache.l3 <= res.cache.l2);
    let (l1, _, _) = res.cache.per_op(res.total_ops);
    assert!(l1 >= 0.0);
}

#[test]
fn facade_reexports_compile_and_work() {
    // The root crate re-exports all member crates.
    let _t = numa::Topology::paper_machine();
    let map: skipgraph::LayeredMap<u64, u64> =
        skipgraph::LayeredMap::new(skipgraph::GraphConfig::new(2));
    let mut h = map.register(instrument::ThreadCtx::plain(0));
    assert!(h.insert(1, 1));
    let pq: sg_pqueue::LayeredPriorityQueue<u64, u64> = sg_pqueue::LayeredPriorityQueue::new(2);
    let mut ph = pq.register(instrument::ThreadCtx::plain(0));
    ph.push(1, 1);
    assert_eq!(ph.pop_min(), Some((1, 1)));
    let mut hier = cache_sim::Hierarchy::xeon_8275cl();
    hier.access(0x40, false);
    assert_eq!(hier.miss_counts().accesses, 1);
    let _ = baselines::HarrisList::<u64, u64>::new(1, 64);
}

#[test]
fn layered_and_skiplist_agree_under_identical_workload() {
    // Differential: run the same deterministic op sequence against the
    // layered map and the lock-free skip list; the surviving key sets must
    // be identical (both are linearizable sets).
    use baselines::{LockFreeSkipList, SkipListConfig};
    let layered: LayeredMap<u64, u64> =
        LayeredMap::new(GraphConfig::new(1).lazy(true).chunk_capacity(4096));
    let skiplist: LockFreeSkipList<u64, u64> =
        LockFreeSkipList::new(SkipListConfig::new(1, 1 << 10).chunk_capacity(4096));
    let mut hl = layered.register(ThreadCtx::plain(0));
    let mut hs = skiplist.pin(ThreadCtx::plain(0));
    let mut state = 42u64;
    for _ in 0..5000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let k = (state >> 33) % 512;
        match state % 3 {
            0 => {
                assert_eq!(hl.insert(k, k), MapHandle::insert(&mut hs, k, k), "insert {k}");
            }
            1 => {
                assert_eq!(hl.remove(&k), MapHandle::remove(&mut hs, &k), "remove {k}");
            }
            _ => {
                assert_eq!(hl.contains(&k), MapHandle::contains(&mut hs, &k), "contains {k}");
            }
        }
    }
    let ctx = ThreadCtx::plain(0);
    assert_eq!(layered.shared().keys(&ctx), skiplist.keys(&ctx));
}

#[test]
fn concurrent_pipeline_under_oversubscription() {
    // The whole pipeline with more threads than this machine has cores.
    let threads = 16;
    let w = Workload::new(threads, 1 << 10)
        .duration(Duration::from_millis(150))
        .write_heavy();
    for name in ["lazy_layered_sg", "layered_map_ssg", "nohotspot"] {
        let res = run_named(name, &w, &InstrMode::Off);
        assert!(res.total_ops > 0, "{name}");
        // On a single-core host the scheduler may starve a few of the 16
        // oversubscribed threads within the window; most must progress.
        let progressed = res.per_thread_ops.iter().filter(|&&o| o > 0).count();
        assert!(progressed >= threads / 2, "{name}: only {progressed} threads progressed");
    }
}
