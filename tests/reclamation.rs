//! Layered-map behaviour under epoch-based reclamation: thread-local
//! structures keep generation-tagged references to shared nodes, and once
//! a node is retired — and its slot possibly recycled under a different
//! key — every stale reference must fail its generation check and fall
//! back to a fresh search instead of trusting the impostor.
//!
//! The scenario uses two handles: handle 0 inserts (and therefore indexes
//! the nodes in *its* local structures), handle 1 removes. With two
//! threads the default tower height is 0, so handle 1's cleanup searches
//! fully unlink and retire every removed node even though the nodes carry
//! handle 0's membership vector — leaving handle 0 holding references to
//! retired (then recycled) slots.

use instrument::ThreadCtx;
use skipgraph::{GraphConfig, LayeredMap};

const N: u64 = 32;

#[test]
fn stale_local_structure_hints_fall_back_after_recycling() {
    let map: LayeredMap<u64, u64> =
        LayeredMap::new(GraphConfig::new(2).reclaim(true).chunk_capacity(1 << 10));
    let mut h0 = map.register(ThreadCtx::plain(0));
    let mut h1 = map.register(ThreadCtx::plain(1));

    // Handle 0 inserts and indexes the keys locally.
    for k in 0..N {
        assert!(h0.insert(k, k));
    }
    assert!(h0.local_len() > 0, "handle 0 indexed its insertions");

    // Handle 1 retires them all and ages the retirements past the grace
    // period. Handle 0's hash and ordered map still reference the retired
    // incarnations.
    for k in 0..N {
        assert!(h1.remove(&k));
    }
    assert_eq!(map.shared().reclaim_flush(h1.ctx()), N as usize);

    // Stale hashtable fast path: the generation check fails, the entry is
    // erased, and the lookup falls back to a head search.
    for k in 0..N / 2 {
        assert!(!h0.contains(&k), "key {k} was removed by handle 1");
        assert_eq!(h0.get(&k), None);
    }

    // Recycling preserves NUMA placement: the freed slots went back to
    // *handle 0's* arena (their allocation site), so handle 0's fresh
    // insertions pop them off the free list. The first insertion's
    // `get_start` also walks handle 0's ordered map, hitting the remaining
    // stale references (generation check fails → entry erased → the search
    // starts from the head instead of jumping in at a recycled slot).
    for k in 100..100 + N {
        assert!(h0.insert(k, k));
    }
    let stats = map.shared().memory_stats(h0.ctx());
    assert_eq!(stats.recycled_slots, N as usize, "slots were reused");

    // The recycled slots now hold different keys; the old keys are gone
    // and the new ones resolve through valid references.
    for k in 0..N {
        assert!(!h0.contains(&k));
        assert!(!h1.contains(&k));
    }
    for k in 100..100 + N {
        assert_eq!(h0.get(&k), Some(k));
        assert_eq!(h1.get(&k), Some(k));
    }

    // Re-inserting through the (now cleaned) fast path works, and the new
    // references validate.
    for k in 0..N {
        assert!(h0.insert(k, k + 1));
        assert_eq!(h0.get(&k), Some(k + 1));
    }
    assert!(map.shared().check_invariants().is_ok());
}

#[test]
fn churn_through_the_layered_handle_recycles_memory() {
    let map: LayeredMap<u64, u64> =
        LayeredMap::new(GraphConfig::new(2).reclaim(true).chunk_capacity(1 << 10));
    let mut h = map.register(ThreadCtx::plain(0));
    const WINDOW: u64 = 16;
    const TOTAL: u64 = 600;
    for i in 0..TOTAL {
        assert!(h.insert(i, i));
        if i >= WINDOW {
            assert!(h.remove(&(i - WINDOW)));
        }
    }
    // Handle operations quiesce periodically on their own (the pin-time
    // tick), so most retired slots are already back on the free lists; a
    // final flush empties the remaining limbo.
    let ctx = ThreadCtx::plain(0);
    map.shared().reclaim_flush(&ctx);
    let stats = map.shared().memory_stats(&ctx);
    assert_eq!(stats.live, WINDOW as usize);
    assert_eq!(stats.retired_nodes as u64, TOTAL - WINDOW);
    assert_eq!(stats.limbo_nodes, 0);
    assert!(
        stats.recycled_slots as u64 > (TOTAL - WINDOW) / 2,
        "churn should be served mostly from recycled slots (recycled {})",
        stats.recycled_slots
    );
    assert!(
        stats.allocated < 300,
        "footprint must plateau near the live set (allocated {})",
        stats.allocated
    );
    assert!(map.shared().check_invariants().is_ok());
}
