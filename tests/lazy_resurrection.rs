//! Lazy-variant resurrection semantics (Alg. 2 / Alg. 12): a remove flips
//! the node's valid bit off without unlinking it, and a subsequent insert
//! of the same key resurrects the *same node* in place instead of
//! allocating a new one. Verified both through map semantics (with
//! `structure_stats` witnessing the physical node) and by checking the
//! resulting histories with the linearizability checker.
#![cfg(not(feature = "bug-injection"))]

use instrument::ThreadCtx;
use linearize::{check_history_from, Event, Op};
use skipgraph::{ConcurrentMap, GraphConfig, LayeredMap, SkipGraph};

fn lazy_graph() -> SkipGraph<u64, u64> {
    SkipGraph::new(
        GraphConfig::new(2)
            .lazy(true)
            .commission_cycles(u64::MAX)
            .chunk_capacity(256),
    )
}

#[test]
fn remove_invalidates_in_place_and_insert_resurrects() {
    let g = lazy_graph();
    let c = ThreadCtx::plain(0);
    assert!(g.insert_with_height(5, 50, 0, &c));
    assert!(g.contains(&5, &c));

    // Remove = casValid(false): the node stays physically linked.
    assert!(g.remove(&5, &c));
    assert!(!g.contains(&5, &c));
    assert_eq!(g.get(&5, &c), None);
    let s = g.structure_stats(&c);
    assert_eq!((s.live, s.invalid, s.marked), (0, 1, 0));

    // Insert = casValid(true) on the existing node: no new allocation.
    let allocated_before = s.allocated();
    assert!(g.insert_with_height(5, 50, 0, &c));
    assert!(g.contains(&5, &c));
    let s = g.structure_stats(&c);
    assert_eq!((s.live, s.invalid, s.marked), (1, 0, 0));
    assert_eq!(
        s.allocated(),
        allocated_before,
        "resurrection must reuse the invalid node, not allocate"
    );
}

#[test]
fn resurrection_cycles_are_stable() {
    let g = lazy_graph();
    let c = ThreadCtx::plain(0);
    assert!(g.insert_with_height(9, 1, 0, &c));
    for _ in 0..50 {
        assert!(g.remove(&9, &c));
        assert!(!g.contains(&9, &c));
        assert!(!g.remove(&9, &c), "double remove must fail");
        assert!(g.insert_with_height(9, 1, 0, &c));
        assert!(g.contains(&9, &c));
        assert!(!g.insert_with_height(9, 1, 0, &c), "double insert must fail");
    }
    let s = g.structure_stats(&ThreadCtx::plain(0));
    assert_eq!(s.allocated(), 1, "one node serves every cycle");
}

#[test]
fn layered_lazy_map_observes_resurrection() {
    let map: LayeredMap<u64, u64> = LayeredMap::new(
        GraphConfig::new(2)
            .lazy(true)
            .commission_cycles(u64::MAX)
            .chunk_capacity(256),
    );
    let mut h = map.pin(ThreadCtx::plain(0));
    assert!(h.insert(3, 30));
    assert!(h.remove(&3));
    assert!(!h.contains(&3));
    assert!(h.insert(3, 31));
    assert!(h.contains(&3));
    assert!(h.remove(&3));
    assert!(!h.contains(&3));
}

#[test]
fn recorded_resurrection_history_linearizes() {
    // Drive a remove/insert/contains cycle through the lazy graph while
    // recording it as a history; the checker must accept it, and must
    // reject the "broken casValid" counterfactual where the remove
    // succeeds but the key remains visible.
    let g = lazy_graph();
    let c = ThreadCtx::plain(0);
    let mut events = Vec::new();
    let mut clock = 0u64;
    let mut record = |op: Op, result: bool, clock: &mut u64| {
        let start = *clock;
        let end = *clock + 1;
        *clock += 2;
        events.push(Event {
            op,
            result,
            start,
            end,
        });
    };
    record(Op::Insert, g.insert_with_height(7, 7, 0, &c), &mut clock);
    record(Op::Remove, g.remove(&7, &c), &mut clock);
    record(Op::Contains, g.contains(&7, &c), &mut clock);
    record(Op::Insert, g.insert_with_height(7, 7, 0, &c), &mut clock);
    record(Op::Contains, g.contains(&7, &c), &mut clock);
    record(Op::Remove, g.remove(&7, &c), &mut clock);
    check_history_from(&events, false).expect("resurrection history must linearize");

    // Counterfactual: contains(7) = true right after the successful
    // remove — exactly what the bug-injection feature produces.
    let mut broken = events.clone();
    broken[2].result = true;
    check_history_from(&broken, false)
        .expect_err("visible-after-remove history must be rejected");
}
