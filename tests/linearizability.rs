//! Linearizability checking of the concurrent structures: record real
//! invocation/response timestamps around every operation, then verify
//! per-key histories with the Wing & Gong checker.
//!
//! To keep histories within the checker's budget, each test uses a small
//! key set and bounded ops per thread; timestamps come from the TSC.
#![cfg(not(feature = "bug-injection"))]

use instrument::time::cycles;
use instrument::ThreadCtx;
use linearize::{check_keyed_histories, Event, Op};
use skipgraph::{ConcurrentMap, GraphConfig, LayeredMap, MapHandle, SkipGraph};
use std::sync::Barrier;

const THREADS: usize = 4;
const KEYS: u64 = 48;
const OPS_PER_THREAD: usize = 160; // ~13 events per key on average

fn record_history<M: ConcurrentMap<u64, u64>>(map: &M) -> Vec<(u64, Event)> {
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..THREADS as u16)
            .map(|t| {
                let map = &map;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut h = map.pin(ThreadCtx::plain(t));
                    let mut events = Vec::with_capacity(OPS_PER_THREAD);
                    let mut state = 0xABCD_EF01u64 ^ ((t as u64) << 32);
                    barrier.wait();
                    for _ in 0..OPS_PER_THREAD {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let k = state % KEYS;
                        let (op, start, result, end) = match state % 3 {
                            0 => {
                                let s0 = cycles();
                                let r = h.insert(k, k);
                                (Op::Insert, s0, r, cycles())
                            }
                            1 => {
                                let s0 = cycles();
                                let r = h.remove(&k);
                                (Op::Remove, s0, r, cycles())
                            }
                            _ => {
                                let s0 = cycles();
                                let r = h.contains(&k);
                                (Op::Contains, s0, r, cycles())
                            }
                        };
                        events.push((
                            k,
                            Event {
                                op,
                                result,
                                start,
                                end,
                            },
                        ));
                    }
                    events
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    })
}

#[test]
fn layered_eager_is_linearizable() {
    let map: LayeredMap<u64, u64> =
        LayeredMap::new(GraphConfig::new(THREADS).chunk_capacity(4096));
    let history = record_history(&map);
    check_keyed_histories(&history).expect("eager layered map");
}

#[test]
fn layered_lazy_is_linearizable() {
    let map: LayeredMap<u64, u64> =
        LayeredMap::new(GraphConfig::new(THREADS).lazy(true).chunk_capacity(4096));
    let history = record_history(&map);
    check_keyed_histories(&history).expect("lazy layered map");
}

#[test]
fn layered_lazy_zero_commission_is_linearizable() {
    let map: LayeredMap<u64, u64> = LayeredMap::new(
        GraphConfig::new(THREADS)
            .lazy(true)
            .commission_cycles(0)
            .chunk_capacity(4096),
    );
    let history = record_history(&map);
    check_keyed_histories(&history).expect("lazy layered map, zero commission");
}

#[test]
fn sparse_layered_is_linearizable() {
    let map: LayeredMap<u64, u64> =
        LayeredMap::new(GraphConfig::new(THREADS).sparse(true).chunk_capacity(4096));
    let history = record_history(&map);
    check_keyed_histories(&history).expect("sparse layered map");
}

#[test]
fn direct_skipgraph_is_linearizable() {
    let g: SkipGraph<u64, u64> =
        SkipGraph::new(GraphConfig::new(THREADS).lazy(true).chunk_capacity(4096));
    let history = record_history(&g);
    check_keyed_histories(&history).expect("direct skip graph");
}

#[test]
fn lockfree_skiplist_is_linearizable() {
    use baselines::{LockFreeSkipList, SkipListConfig};
    let l: LockFreeSkipList<u64, u64> =
        LockFreeSkipList::new(SkipListConfig::new(THREADS, KEYS).chunk_capacity(4096));
    let history = record_history(&l);
    check_keyed_histories(&history).expect("lock-free skip list");
}

#[test]
fn nohotspot_is_linearizable() {
    use baselines::NoHotspotSkipList;
    let l: NoHotspotSkipList<u64, u64> =
        NoHotspotSkipList::new(THREADS, 4096, std::time::Duration::from_millis(1));
    let history = record_history(&l);
    check_keyed_histories(&history).expect("no-hotspot skip list");
}

#[test]
fn checker_catches_a_broken_map() {
    // Sanity check that the pipeline would actually catch a bug: a "map"
    // whose insert always reports success is not linearizable.
    struct AlwaysYes;
    struct YesHandle(ThreadCtx);
    impl ConcurrentMap<u64, u64> for AlwaysYes {
        type Handle<'a> = YesHandle;
        fn pin(&self, ctx: ThreadCtx) -> YesHandle {
            YesHandle(ctx)
        }
    }
    impl MapHandle<u64, u64> for YesHandle {
        fn insert(&mut self, _k: u64, _v: u64) -> bool {
            true
        }
        fn remove(&mut self, _k: &u64) -> bool {
            false
        }
        fn contains(&mut self, _k: &u64) -> bool {
            false
        }
        fn ctx(&self) -> &ThreadCtx {
            &self.0
        }
    }
    let history = record_history(&AlwaysYes);
    assert!(
        check_keyed_histories(&history).is_err(),
        "double successful inserts must be rejected"
    );
}

#[test]
fn rotating_is_linearizable() {
    use baselines::RotatingSkipList;
    let l: RotatingSkipList<u64, u64> =
        RotatingSkipList::new(THREADS, 4096, std::time::Duration::from_millis(1));
    let history = record_history(&l);
    check_keyed_histories(&history).expect("rotating skip list");
}

#[test]
fn numask_is_linearizable() {
    use baselines::NumaskSkipList;
    let l: NumaskSkipList<u64, u64> = NumaskSkipList::new(
        vec![0, 0, 1, 1],
        4096,
        std::time::Duration::from_millis(1),
    );
    let history = record_history(&l);
    check_keyed_histories(&history).expect("numask skip list");
}

#[test]
fn locked_skiplist_is_linearizable() {
    use baselines::LockedSkipList;
    let l: LockedSkipList<u64, u64> = LockedSkipList::new(THREADS, 8, 4096);
    let history = record_history(&l);
    check_keyed_histories(&history).expect("locked skip list");
}

#[test]
fn harris_list_is_linearizable() {
    use baselines::HarrisList;
    let l: HarrisList<u64, u64> = HarrisList::new(THREADS, 4096);
    let history = record_history(&l);
    check_keyed_histories(&history).expect("harris list");
}

#[test]
fn layered_linked_list_and_single_sl_are_linearizable() {
    for cfg in [
        GraphConfig::linked_list(THREADS).chunk_capacity(4096),
        GraphConfig::single_skip_list(THREADS).chunk_capacity(4096),
    ] {
        let map: LayeredMap<u64, u64> = LayeredMap::new(cfg);
        let history = record_history(&map);
        check_keyed_histories(&history).expect("layered ablation variant");
    }
}
