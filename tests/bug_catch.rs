//! Harness validation: with `--features "deterministic bug-injection"` the
//! lazy remove skips its validity CAS (it reports success without ever
//! unlinking the key), and the stress runner must catch the resulting
//! non-linearizable history, shrink it, and produce a replayable report.
#![cfg(all(feature = "deterministic", feature = "bug-injection"))]

use linearize::Op;
use skipgraph::det::{DetConfig, Policy};
use synchro::stress::{records_named_det, stress_named_det, StressConfig};

fn bug_workload() -> StressConfig {
    StressConfig {
        threads: 3,
        key_space: 8,
        ops_per_thread: 30,
        update_pct: 70,
        preload: true,
        seed: 5,
    }
}

#[test]
fn injected_lazy_remove_bug_is_caught_and_shrunk() {
    let cfg = bug_workload();
    let det = DetConfig::new(
        1,
        Policy::Pct {
            change_points: 8,
            expected_steps: 40_000,
        },
    );
    let report = stress_named_det("lazy_layered_sg", &cfg, &det)
        .expect_err("injected bug went undetected");

    // The report must carry a replayable schedule and a concrete history.
    let (shrunk_det, _trace) = report.schedule.clone().expect("det report without schedule");
    assert!(matches!(shrunk_det.policy, Policy::Replay { .. }));
    assert!(!report.failure.history.is_empty());
    // A broken remove is the only injected fault, so the violating history
    // must involve one.
    assert!(
        report
            .failure
            .history
            .iter()
            .any(|r| r.op == Op::Remove && r.result),
        "shrunk history has no successful remove: {report}"
    );

    // Shrinking must actually shrink: far fewer ops than the full plan.
    let total: usize = report.plans.iter().map(Vec::len).sum();
    let original = cfg.threads as usize * cfg.ops_per_thread;
    assert!(
        total <= original / 4,
        "shrinker left {total} of {original} ops: {report}"
    );

    // And the minimal (plans, schedule) pair must still reproduce the
    // violation when replayed from scratch.
    let (records, _) = records_named_det("lazy_layered_sg", &report.config, &report.plans, &shrunk_det);
    let replay_check = synchro::stress::check_records(&records, &report.config);
    assert!(
        replay_check.is_err(),
        "shrunk report does not reproduce the violation:\n{report}"
    );

    // The rendered report names the structure and the replay seed.
    // (Printed so CI logs show what a shrunk failure looks like.)
    eprintln!("{report}");
    let text = format!("{report}");
    assert!(text.contains("lazy_layered_sg"));
    assert!(text.contains("replay:"));
}

#[test]
fn non_lazy_structures_are_unaffected_by_the_injection() {
    // The injected fault is in the lazy remove path only; the eager
    // protocol must still linearize even with the feature enabled.
    let cfg = bug_workload();
    let det = DetConfig::new(2, Policy::RoundRobin { quantum: 7 });
    for name in ["layered_map_sg", "skipgraph", "skiplist"] {
        stress_named_det(name, &cfg, &det).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn injected_stale_index_read_is_caught_and_shrunk() {
    // The hash index's injected coherence fault: the eager remove winner
    // skips its invalidate-before-retire duty, and the index read path
    // trusts any generation-valid entry without re-checking the node's
    // validity word. With no reclamation running the generation never
    // bumps, so the stale entry keeps answering point reads for a key
    // that was removed — a successful remove followed by a `true`
    // contains with no insert in between, which cannot linearize.
    let cfg = StressConfig {
        threads: 3,
        key_space: 8,
        ops_per_thread: 30,
        update_pct: 70,
        preload: true,
        seed: 5,
    };
    let mut caught = None;
    for det_seed in [1u64, 2, 3] {
        let det = DetConfig::new(det_seed, Policy::RoundRobin { quantum: 2 });
        if let Err(report) = stress_named_det("hashed_sg", &cfg, &det) {
            caught = Some(report);
            break;
        }
    }
    let report = caught.expect("stale index read injection went undetected on every schedule");

    let (shrunk_det, _trace) = report.schedule.clone().expect("det report without schedule");
    assert!(matches!(shrunk_det.policy, Policy::Replay { .. }));
    assert!(!report.failure.history.is_empty());
    // The only injected fault is the skipped invalidate, so the violating
    // history must contain the remove whose entry went stale.
    assert!(
        report
            .failure
            .history
            .iter()
            .any(|r| r.op == Op::Remove && r.result),
        "shrunk history has no successful remove: {report}"
    );

    let total: usize = report.plans.iter().map(Vec::len).sum();
    let original = cfg.threads as usize * cfg.ops_per_thread;
    assert!(
        total <= original / 2,
        "shrinker left {total} of {original} ops: {report}"
    );

    let (records, _) =
        records_named_det("hashed_sg", &report.config, &report.plans, &shrunk_det);
    assert!(
        synchro::stress::check_records(&records, &report.config).is_err(),
        "shrunk report does not reproduce the violation:\n{report}"
    );

    let text = format!("{report}");
    assert!(text.contains("hashed_sg"));
    assert!(text.contains("replay:"));
}

#[test]
fn injected_stale_replica_read_is_caught_and_shrunk() {
    // The replication layer's injected fault: `catch_up_for_read` loads
    // the mapped log's head and then returns without waiting for the
    // local replica's tail to pass it — the NR read rule severed. Writes
    // still linearize (every result is computed in log order on the home
    // replica), so only reads can lie: a thread whose socket has no
    // pending write of its own serves `contains` from whatever prefix
    // its replica happens to have applied, missing updates (or even the
    // preload) already completed through the log. Three threads on two
    // synthetic sockets put thread 2 alone on socket 1, so its reads race
    // the other socket's completed writes. PCT schedules (not round-robin:
    // the strict rotation parks the lone reader inside other threads'
    // replays often enough to keep its replica accidentally fresh) let a
    // remote write complete while the reader's replica still lags.
    let cfg = StressConfig {
        threads: 3,
        key_space: 8,
        ops_per_thread: 30,
        update_pct: 70,
        preload: true,
        seed: 5,
    };
    let mut caught = None;
    for det_seed in [1u64, 2, 3] {
        let det = DetConfig::new(
            det_seed,
            Policy::Pct {
                change_points: 10,
                expected_steps: 60_000,
            },
        );
        if let Err(report) = stress_named_det("replicated_sg", &cfg, &det) {
            caught = Some(report);
            break;
        }
    }
    let report = caught.expect("stale replica read injection went undetected on every schedule");

    let (shrunk_det, _trace) = report.schedule.clone().expect("det report without schedule");
    assert!(matches!(shrunk_det.policy, Policy::Replay { .. }));
    assert!(!report.failure.history.is_empty());
    // The severed tail-wait only affects the read path, so the violating
    // history must contain the stale read itself.
    assert!(
        report.failure.history.iter().any(|r| r.op == Op::Contains),
        "shrunk history has no contains: {report}"
    );

    let total: usize = report.plans.iter().map(Vec::len).sum();
    let original = cfg.threads as usize * cfg.ops_per_thread;
    assert!(
        total <= original / 2,
        "shrinker left {total} of {original} ops: {report}"
    );

    let (records, _) =
        records_named_det("replicated_sg", &report.config, &report.plans, &shrunk_det);
    assert!(
        synchro::stress::check_records(&records, &report.config).is_err(),
        "shrunk report does not reproduce the violation:\n{report}"
    );

    let text = format!("{report}");
    assert!(text.contains("replicated_sg"));
    assert!(text.contains("replay:"));
}

#[test]
fn injected_severed_downshift_drain_is_caught_and_shrunk() {
    // The adaptation subsystem's injected fault: the replication gate's
    // downshift publishes the single-structure epoch *without* draining
    // the operation logs first. Writes that completed through logs homed
    // on other sockets are still waiting in those logs when reads start
    // going directly to replica 0 — so a read can miss an update (or the
    // preload) whose writer already returned success. The `adaptive_sg`
    // lane's tiny 8-op window, zero dwell, and a write band straddling
    // the 70% mix make the gate oscillate mid-run, and PCT schedules land
    // reads in the gap between a premature epoch flip and the log replay
    // that would have covered it. The gap closes the moment any single-
    // mode write drains the stranded log, so probe a handful of seeds
    // rather than pinning one alignment. (replicated_sg keeps the severed
    // read-side tail-wait; each lane carries exactly one live fault.)
    let cfg = StressConfig {
        threads: 3,
        key_space: 8,
        ops_per_thread: 30,
        update_pct: 70,
        preload: true,
        seed: 5,
    };
    let mut caught = None;
    for det_seed in 1u64..=10 {
        let det = DetConfig::new(
            det_seed,
            Policy::Pct {
                change_points: 10,
                expected_steps: 60_000,
            },
        );
        if let Err(report) = stress_named_det("adaptive_sg", &cfg, &det) {
            caught = Some(report);
            break;
        }
    }
    let report = caught.expect("severed downshift drain went undetected on every schedule");

    let (shrunk_det, _trace) = report.schedule.clone().expect("det report without schedule");
    assert!(matches!(shrunk_det.policy, Policy::Replay { .. }));
    assert!(!report.failure.history.is_empty());
    // The skipped drain only corrupts what reads observe (writes still
    // compute their results in log order before the flip), so the
    // violating history must contain the stale read itself.
    assert!(
        report.failure.history.iter().any(|r| r.op == Op::Contains),
        "shrunk history has no contains: {report}"
    );

    // Shrinking must make progress, but this fault resists deep shrinks
    // by construction: the sensor windows are op-count-based, so dropping
    // operations shifts every later window boundary and moves the very
    // downshift under test — most candidate reductions dissolve the
    // violation rather than isolate it.
    let total: usize = report.plans.iter().map(Vec::len).sum();
    let original = cfg.threads as usize * cfg.ops_per_thread;
    assert!(
        total < original,
        "shrinker left {total} of {original} ops: {report}"
    );

    let (records, _) =
        records_named_det("adaptive_sg", &report.config, &report.plans, &shrunk_det);
    assert!(
        synchro::stress::check_records(&records, &report.config).is_err(),
        "shrunk report does not reproduce the violation:\n{report}"
    );

    let text = format!("{report}");
    assert!(text.contains("adaptive_sg"));
    assert!(text.contains("replay:"));
}

#[test]
fn injected_blocked_lost_insert_is_caught_and_shrunk() {
    // The blocked map's injected fault: an insert that observes its block
    // frozen at publish time reports success without ever setting the
    // present bit, so the key silently misses the survivor migration —
    // the lost-insert window a skipped post-split recheck would open.
    // The fault needs a freeze to land between a claim and its publish:
    // a tiny key space keeps one block churning through splits and
    // merges, and probing a few short round-robin quanta per seed parks
    // threads inside that window (the exact alignment shifts whenever
    // the handles' yield-point count changes, so probe, don't pin).
    let cfg = StressConfig {
        threads: 2,
        key_space: 4,
        ops_per_thread: 40,
        update_pct: 80,
        preload: true,
        seed: 7,
    };
    let mut caught = None;
    'probe: for quantum in [2u32, 3, 5, 7] {
        for det_seed in 1u64..=8 {
            let det = DetConfig::new(det_seed, Policy::RoundRobin { quantum });
            if let Err(report) = stress_named_det("blocked_sg", &cfg, &det) {
                caught = Some(report);
                break 'probe;
            }
        }
    }
    let report = caught.expect("blocked lost-insert injection went undetected on every schedule");

    let (shrunk_det, _trace) = report.schedule.clone().expect("det report without schedule");
    assert!(matches!(shrunk_det.policy, Policy::Replay { .. }));
    assert!(!report.failure.history.is_empty());
    // A lying insert is the only injected fault, so the violating history
    // must contain one that claimed success.
    assert!(
        report
            .failure
            .history
            .iter()
            .any(|r| r.op == Op::Insert && r.result),
        "shrunk history has no successful insert: {report}"
    );

    let total: usize = report.plans.iter().map(Vec::len).sum();
    let original = cfg.threads as usize * cfg.ops_per_thread;
    assert!(
        total <= original / 2,
        "shrinker left {total} of {original} ops: {report}"
    );

    let (records, _) =
        records_named_det("blocked_sg", &report.config, &report.plans, &shrunk_det);
    assert!(
        synchro::stress::check_records(&records, &report.config).is_err(),
        "shrunk report does not reproduce the violation:\n{report}"
    );

    let text = format!("{report}");
    assert!(text.contains("blocked_sg"));
    assert!(text.contains("replay:"));
}

#[test]
fn injected_anchor_stale_covering_is_caught_and_shrunk() {
    // The anchor cache's injected fault (compacting policies only, so
    // each stress lane still carries exactly one live fault): a cached
    // anchor that passes the liveness ladder is returned *without* the
    // covering check. After splits mint anchors the cache has never
    // seen, an op on a key past a cached block's range then lands inside
    // the wrong block — an insert publishes where no descent will ever
    // look, a lookup reports a present key absent. The key space spans
    // several cap-4 blocks so evictions of split-killed anchors leave
    // live-but-non-covering ones behind, and short round-robin quanta
    // interleave the splits with the stale-cache ops.
    let cfg = StressConfig {
        threads: 3,
        key_space: 12,
        ops_per_thread: 60,
        update_pct: 80,
        preload: true,
        seed: 19,
    };
    let mut caught = None;
    for det_seed in [1u64, 2, 3, 4] {
        let det = DetConfig::new(det_seed, Policy::RoundRobin { quantum: 2 });
        if let Err(report) = stress_named_det("anchor_blocked_sg", &cfg, &det) {
            caught = Some(report);
            break;
        }
    }
    let report =
        caught.expect("anchor stale-covering injection went undetected on every schedule");

    let (shrunk_det, _trace) = report.schedule.clone().expect("det report without schedule");
    assert!(matches!(shrunk_det.policy, Policy::Replay { .. }));
    assert!(!report.failure.history.is_empty());

    let total: usize = report.plans.iter().map(Vec::len).sum();
    let original = cfg.threads as usize * cfg.ops_per_thread;
    assert!(
        total <= original / 2,
        "shrinker left {total} of {original} ops: {report}"
    );

    let (records, _) =
        records_named_det("anchor_blocked_sg", &report.config, &report.plans, &shrunk_det);
    assert!(
        synchro::stress::check_records(&records, &report.config).is_err(),
        "shrunk report does not reproduce the violation:\n{report}"
    );

    let text = format!("{report}");
    assert!(text.contains("anchor_blocked_sg"));
    assert!(text.contains("replay:"));
}
