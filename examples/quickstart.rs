//! Quickstart: build a layered skip-graph map, register threads, and run
//! concurrent operations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use instrument::ThreadCtx;
use skipgraph::{GraphConfig, LayeredMap};

fn main() {
    const THREADS: usize = 4;

    // A lazy layered skip graph for 4 threads: MaxLevel = ceil(log2 4) - 1,
    // NUMA-aware membership vectors, commission period 350000 * T cycles.
    let config = GraphConfig::new(THREADS).lazy(true);
    println!("config: {config:?}");
    let map: LayeredMap<u64, String> = LayeredMap::new(config);

    // The cross-thread lookups below assert keys inserted by *other*
    // threads, so every thread must finish its insert stripe first.
    let inserted = std::sync::Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS as u16 {
            let map = &map;
            let inserted = &inserted;
            s.spawn(move || {
                // Each thread registers once and gets a handle owning its
                // thread-local structures (ordered map + hash table).
                let mut handle = map.register(ThreadCtx::plain(t));
                println!(
                    "thread {t}: membership vector {:03b}",
                    handle.membership()
                );

                // Insert a stripe of keys.
                for i in 0..10u64 {
                    let key = i * THREADS as u64 + t as u64;
                    assert!(handle.insert(key, format!("value-{key}")));
                }
                inserted.wait();

                // Local speculative lookups hit the thread's own hashtable.
                assert!(handle.contains(&(t as u64)));

                // Cross-thread keys are found through the shared structure.
                let other = ((t as u64 + 1) % THREADS as u64) + THREADS as u64;
                assert!(handle.contains(&other));

                // Removals are logical (valid-bit) and can resurrect.
                assert!(handle.remove(&(t as u64)));
                assert!(!handle.contains(&(t as u64)));
                assert!(handle.insert(t as u64, "revived".into()));
                assert!(handle.contains(&(t as u64)));
            });
        }
    });

    // The bottom level of the shared structure is an ordered snapshot.
    let ctx = ThreadCtx::plain(0);
    let keys = map.shared().keys(&ctx);
    println!("final size: {}", keys.len());
    assert_eq!(keys.len(), 40);
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted");
    map.shared().check_invariants().expect("structural invariants");
    println!("first keys: {:?}...", &keys[..8]);
}
