//! A deadline scheduler on the layered priority queue (the paper's
//! appendix extension): producers enqueue jobs with deadlines, workers pop
//! the earliest deadline — exactly or with SprayList-style relaxation.
//!
//! ```text
//! cargo run --release --example priority_scheduler
//! ```

use instrument::ThreadCtx;
use sg_pqueue::LayeredPriorityQueue;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const PRODUCERS: usize = 2;
const WORKERS: usize = 4;
const THREADS: usize = PRODUCERS + WORKERS;
const JOBS_PER_PRODUCER: u64 = 5_000;

fn main() {
    // Priorities are (deadline << 16) | producer-unique-low-bits, so keys
    // are unique while ordering by deadline.
    let pq: LayeredPriorityQueue<u64, u64> = LayeredPriorityQueue::new(THREADS);
    let produced = AtomicU64::new(0);
    let executed = AtomicU64::new(0);
    let inversions = AtomicU64::new(0);
    let done_producing = AtomicBool::new(false);

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..PRODUCERS as u16 {
            let pq = &pq;
            let produced = &produced;
            s.spawn(move || {
                let mut h = pq.register(ThreadCtx::plain(p));
                let mut state = 0xD15C0 ^ p as u64;
                for i in 0..JOBS_PER_PRODUCER {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let deadline = state % 100_000;
                    let key = (deadline << 16) | (p as u64) << 14 | (i & 0x3FFF);
                    if h.push(key, deadline) {
                        produced.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for w in 0..WORKERS as u16 {
            let pq = &pq;
            let executed = &executed;
            let inversions = &inversions;
            let done_producing = &done_producing;
            s.spawn(move || {
                let mut h = pq.register(ThreadCtx::plain(PRODUCERS as u16 + w));
                let relaxed = w % 2 == 1; // half the workers use spray-pops
                let mut last_deadline = 0u64;
                loop {
                    let popped = if relaxed {
                        h.pop_approx_min(8)
                    } else {
                        h.pop_min()
                    };
                    match popped {
                        Some((_, deadline)) => {
                            executed.fetch_add(1, Ordering::Relaxed);
                            // Track local priority inversions (expected
                            // small; nonzero because pops are concurrent
                            // and half are relaxed).
                            if deadline < last_deadline {
                                inversions.fetch_add(1, Ordering::Relaxed);
                            }
                            last_deadline = deadline;
                        }
                        None => {
                            if done_producing.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
        // Wait for the producers (the first PRODUCERS spawned threads).
        while produced.load(Ordering::Relaxed) < (PRODUCERS as u64 * JOBS_PER_PRODUCER) * 95 / 100
            && t0.elapsed() < Duration::from_secs(30)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Give workers a moment to drain, then signal completion.
        std::thread::sleep(Duration::from_millis(100));
        done_producing.store(true, Ordering::Release);
    });

    let produced = produced.load(Ordering::Relaxed);
    let executed = executed.load(Ordering::Relaxed);
    println!(
        "produced {produced} jobs, executed {executed}, {} local inversions, {:?} elapsed",
        inversions.load(Ordering::Relaxed),
        t0.elapsed()
    );
    // Every produced job is eventually executed or still queued.
    let mut h = pq.register(ThreadCtx::plain(0));
    let mut remaining = 0u64;
    while h.pop_min().is_some() {
        remaining += 1;
    }
    println!("drained {remaining} leftover jobs");
    assert_eq!(executed + remaining, produced, "no job lost or duplicated");
}
