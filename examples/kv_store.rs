//! A concurrent ordered key-value store built on the layered skip graph —
//! the kind of data-intensive workload the paper's introduction motivates.
//!
//! Writers ingest timestamped events keyed by `(shard << 48) | sequence`,
//! readers run point lookups and ordered scans, and an expiry thread
//! removes old entries. Run with:
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use instrument::ThreadCtx;
use skipgraph::{GraphConfig, LayeredMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const WRITERS: usize = 3;
const READERS: usize = 2;
const EXPIRERS: usize = 1;
const THREADS: usize = WRITERS + READERS + EXPIRERS;
const RUN_FOR: Duration = Duration::from_millis(500);

fn event_key(shard: u64, seq: u64) -> u64 {
    (shard << 48) | seq
}

fn main() {
    let map: LayeredMap<u64, u64> = LayeredMap::new(GraphConfig::new(THREADS).lazy(true));
    let stop = AtomicBool::new(false);
    let ingested = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let lookups = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Writers: one shard each, monotonically increasing sequence.
        for w in 0..WRITERS as u16 {
            let map = &map;
            let stop = &stop;
            let ingested = &ingested;
            s.spawn(move || {
                let mut h = map.register(ThreadCtx::plain(w));
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let now_payload = seq * 1000;
                    if h.insert(event_key(w as u64, seq), now_payload) {
                        ingested.fetch_add(1, Ordering::Relaxed);
                    }
                    seq += 1;
                }
            });
        }
        // Readers: random point lookups across shards.
        for r in 0..READERS as u16 {
            let map = &map;
            let stop = &stop;
            let lookups = &lookups;
            s.spawn(move || {
                let mut h = map.register(ThreadCtx::plain(WRITERS as u16 + r));
                let mut state = 0x1234_5678u64 ^ r as u64;
                while !stop.load(Ordering::Relaxed) {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let shard = state % WRITERS as u64;
                    let seq = state % 4096;
                    let _ = h.contains(&event_key(shard, seq));
                    lookups.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Expiry: repeatedly removes the oldest entries of each shard.
        for e in 0..EXPIRERS as u16 {
            let map = &map;
            let stop = &stop;
            let expired = &expired;
            s.spawn(move || {
                let id = (WRITERS + READERS) as u16 + e;
                let mut h = map.register(ThreadCtx::plain(id));
                let mut horizon = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut any = false;
                    for shard in 0..WRITERS as u64 {
                        if h.remove(&event_key(shard, horizon)) {
                            expired.fetch_add(1, Ordering::Relaxed);
                            any = true;
                        }
                    }
                    if any {
                        horizon += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Timer.
        let t0 = Instant::now();
        while t0.elapsed() < RUN_FOR {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let ctx = ThreadCtx::plain(0);
    let live = map.shared().len(&ctx);
    println!(
        "ingested {} events, served {} lookups, expired {}, {} live",
        ingested.load(Ordering::Relaxed),
        lookups.load(Ordering::Relaxed),
        expired.load(Ordering::Relaxed),
        live
    );
    assert_eq!(
        live as u64,
        ingested.load(Ordering::Relaxed) - expired.load(Ordering::Relaxed),
        "conservation: live = ingested - expired"
    );
    // Ordered scan: per-shard events come back in sequence order.
    let keys = map.shared().keys(&ctx);
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    map.shared().check_invariants().expect("invariants");
    println!("ordered scan over {} keys verified", keys.len());
}
