//! Demo of the deterministic-schedule stress harness.
//!
//! ```sh
//! cargo run --features deterministic --example det_stress
//! SCHEDULE_SEED=42 cargo run --features deterministic --example det_stress -- lazy_layered_sg
//! cargo run --features "deterministic bug-injection" --example det_stress
//! ```
//!
//! Runs a seeded workload twice under the cooperative scheduler, shows the
//! schedule trace, and proves the replay is byte-for-byte identical. With
//! `bug-injection` also enabled, shows the shrunk failure report instead.

#[cfg(not(feature = "deterministic"))]
fn main() {
    eprintln!("rebuild with: cargo run --features deterministic --example det_stress");
    std::process::exit(2);
}

#[cfg(feature = "deterministic")]
fn main() {
    use skipgraph::det::{DetConfig, Policy};
    use synchro::stress::{plan_workload, records_named_det, stress_named_det, StressConfig};

    let structure = std::env::args().nth(1).unwrap_or_else(|| "lazy_layered_sg".into());
    let seed: u64 = std::env::var("SCHEDULE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15C0);
    let cfg = StressConfig::contended(7);
    let det = DetConfig::new(
        seed,
        Policy::Pct {
            change_points: 12,
            expected_steps: 60_000,
        },
    );
    println!(
        "structure={structure} workload_seed={} schedule_seed={seed} ({} threads x {} ops)",
        cfg.seed, cfg.threads, cfg.ops_per_thread
    );

    match stress_named_det(&structure, &cfg, &det) {
        Ok(trace) => {
            println!("linearizable; schedule {}", trace.render());
            let plans = plan_workload(&cfg);
            let (r1, t1) = records_named_det(&structure, &cfg, &plans, &det);
            let (r2, t2) = records_named_det(&structure, &cfg, &plans, &det);
            assert_eq!(t1, t2);
            assert_eq!(r1, r2);
            println!(
                "replay: {} records, byte-for-byte identical across two runs",
                r1.len()
            );
            println!("first records: ");
            for r in r1.iter().take(5) {
                println!("  {r}");
            }
        }
        Err(report) => {
            println!("{report}");
            std::process::exit(1);
        }
    }
}
