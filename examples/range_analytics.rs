//! Mixed OLTP/analytics scenario: transactional threads update an ordered
//! index through registered handles while an analytics thread — *not* part
//! of the registered set — runs ordered range scans through a read-only
//! view (the paper's heterogeneous-workload accommodation).
//!
//! ```text
//! cargo run --release --example range_analytics
//! ```

use instrument::ThreadCtx;
use skipgraph::{GraphConfig, LayeredMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const WRITERS: usize = 3;
const RUN_FOR: Duration = Duration::from_millis(400);
/// Account balances keyed by account id; each writer owns an id stripe.
const ACCOUNTS_PER_WRITER: u64 = 2000;

fn main() {
    // The shared hash index doubles as the scans' positioning structure:
    // a stripe scan probes its first key in the index and, on a validated
    // hit, starts walking at that node with no tower descent at all.
    let map: LayeredMap<u64, u64> =
        LayeredMap::new(GraphConfig::new(WRITERS).lazy(true).hash_index(true));
    // Seed the dataset.
    {
        let mut h = map.register(ThreadCtx::plain(0));
        for a in 0..WRITERS as u64 * ACCOUNTS_PER_WRITER {
            assert!(h.insert(a, 100));
        }
    }
    let stop = AtomicBool::new(false);
    let churn = AtomicU64::new(0);
    let scans = AtomicU64::new(0);
    // Attributes the analytics reader's positioning probes (one per
    // stripe scan) so the summary can report index-accelerated starts.
    let reader_stats = instrument::AccessStats::new(1);

    std::thread::scope(|s| {
        // Transactional writers: close and reopen accounts in their stripe.
        for w in 0..WRITERS as u16 {
            let map = &map;
            let stop = &stop;
            let churn = &churn;
            s.spawn(move || {
                let mut h = map.register(ThreadCtx::plain(w));
                let base = w as u64 * ACCOUNTS_PER_WRITER;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let account = base + (i * 7) % ACCOUNTS_PER_WRITER;
                    if h.remove(&account) {
                        // Reopen with an updated balance.
                        h.insert(account, 100 + i % 50);
                        churn.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }
        // Analytics reader: unregistered thread, read-only view, stripe
        // sums via range scans.
        s.spawn(|| {
            let view = map.read_only_with(ThreadCtx::recording(0, reader_stats.clone()));
            while !stop.load(Ordering::Relaxed) {
                for w in 0..WRITERS as u64 {
                    let lo = w * ACCOUNTS_PER_WRITER;
                    let hi = lo + ACCOUNTS_PER_WRITER;
                    let (count, sum) = view
                        .range(Bound::Included(&lo), Bound::Excluded(hi))
                        .fold((0u64, 0u64), |(c, s), (_, v)| (c + 1, s + v));
                    // Accounts are only ever *replaced* (remove+insert), so
                    // a scan sees nearly the whole stripe; balances are in
                    // the configured band.
                    assert!(count <= ACCOUNTS_PER_WRITER);
                    assert!(count > ACCOUNTS_PER_WRITER / 2, "stripe {w}: {count}");
                    assert!(sum >= 100 * count);
                    scans.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        let t0 = Instant::now();
        while t0.elapsed() < RUN_FOR {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let ctx = ThreadCtx::plain(0);
    let stats = map.shared().structure_stats(&ctx);
    println!(
        "churned {} accounts, ran {} stripe scans",
        churn.load(Ordering::Relaxed),
        scans.load(Ordering::Relaxed)
    );
    // Each stripe scan probes exactly one key (its lower bound). A hit
    // means the scan started walking at that node without a descent; the
    // stripe base is only briefly absent mid-replacement, so most scans
    // should start accelerated.
    let reads = reader_stats.totals();
    println!(
        "range positioning: {} probes answered by the index, {} descended",
        reads.index_hits,
        reads.index_misses + reads.index_stale
    );
    assert!(
        reads.index_hits > 0,
        "no stripe scan ever started from the shared index"
    );
    println!(
        "final structure: {} live, {} invalid (commission pending), {} marked, \
         {:.1}% dead weight, {} nodes allocated",
        stats.live,
        stats.invalid,
        stats.marked,
        100.0 * stats.dead_fraction(),
        stats.allocated()
    );
    assert_eq!(stats.live as u64, WRITERS as u64 * ACCOUNTS_PER_WRITER);
    map.shared().check_invariants().expect("invariants");
}
