//! NUMA-locality instrumentation demo: runs the paper's MC write-heavy
//! workload against the lazy layered skip graph and a lock-free skip list,
//! then prints the Table-1-style locality summary and a node-pair access
//! heatmap for both — the same machinery behind Figures 6–9/14–17.
//!
//! ```text
//! cargo run --release --example numa_heatmap
//! ```

use instrument::report::{accesses_by_node_pair, locality_summary, render_ascii_heatmap};
use instrument::AccessStats;
use numa::{Placement, Topology};
use std::sync::Arc;
use std::time::Duration;
use synchro::registry::run_named;
use synchro::{InstrMode, Workload};

const THREADS: usize = 8;

fn main() {
    let topology = Topology::detect_or_paper();
    println!("topology: {topology}");
    let placement = Placement::new(&topology, THREADS);
    let mut numa_of = placement.numa_nodes();
    if numa_of.iter().all(|&n| n == numa_of[0]) {
        // All threads fit one socket: classify against the modeled split
        // at T/2 (the boundary the membership vectors encode) so the
        // local/remote columns stay meaningful at small scale.
        numa_of = (0..THREADS).map(|t| usize::from(t >= THREADS / 2)).collect();
        println!("(single-socket placement; using modeled 2-node split)");
    }
    println!("thread -> NUMA node: {numa_of:?}");

    let workload = Workload::mc(THREADS)
        .write_heavy()
        .duration(Duration::from_millis(300));

    for structure in ["lazy_layered_sg", "skiplist"] {
        let stats = AccessStats::new(THREADS);
        let res = run_named(structure, &workload, &InstrMode::Stats(Arc::clone(&stats)));
        let summary = locality_summary(&stats, &numa_of);
        println!("\n== {structure} ==");
        println!(
            "throughput: {:.0} ops/ms ({:.1}% effective updates)",
            res.ops_per_ms(),
            res.effective_update_pct()
        );
        println!(
            "reads/op: {:.2} local + {:.2} remote (locality {:.1}%)",
            summary.local_reads_per_op,
            summary.remote_reads_per_op,
            100.0 * summary.read_locality()
        );
        println!(
            "maintenance CAS/op: {:.4} local + {:.4} remote, success rate {:.3}",
            summary.local_cas_per_op, summary.remote_cas_per_op, summary.cas_success_rate
        );
        println!("CAS heatmap ({THREADS}x{THREADS}, log-shaded):");
        print!("{}", render_ascii_heatmap(stats.cas(), 16));
        let nodes = numa_of.iter().copied().max().unwrap_or(0) + 1;
        println!("aggregated by NUMA-node pair:");
        for (i, row) in accesses_by_node_pair(stats.cas(), &numa_of, nodes)
            .iter()
            .enumerate()
        {
            println!("  from node {i}: {row:?}");
        }
    }
    println!(
        "\nThe layered structure should show markedly higher locality than \
         the skip list (paper: 70% fewer remote CAS/op at 96 threads)."
    );

    // Hash-index occupancy heatmap: load an indexed map and show how the
    // keys landed across the per-NUMA-segment tables — the tuning signal
    // for `GraphConfig::index_capacity` (entries crowding 3/4 of a
    // segment's capacity mean an imminent grow; mass in the histogram's
    // upper buckets means long probe chains despite free space).
    let map: skipgraph::LayeredMap<u64, u64> = skipgraph::LayeredMap::new(
        skipgraph::GraphConfig::new(THREADS)
            .lazy(true)
            .hash_index(true),
    );
    {
        let mut h = map.register(instrument::ThreadCtx::plain(0));
        for k in 0..40_000u64 {
            h.insert(k.wrapping_mul(0x9E37_79B9) >> 8, k);
        }
        for k in 0..10_000u64 {
            h.remove(&(k.wrapping_mul(0x9E37_79B9) >> 8));
        }
    }
    let mem = map.shared().memory_stats(&instrument::ThreadCtx::plain(0));
    println!(
        "\n== hash-index occupancy ({} segments, {} slots total) ==",
        mem.index_segments, mem.index_capacity
    );
    for (i, seg) in map.shared().index_occupancy().iter().enumerate() {
        let hist: Vec<u64> = seg.probe_histogram.to_vec();
        println!(
            "  segment {i}: {}/{} entries ({:.0}% load, {} tombstones), \
             mean probe {:.2}, histogram {:?}",
            seg.entries,
            seg.capacity,
            100.0 * seg.load_factor(),
            seg.tombstones,
            seg.mean_probe(),
            hist
        );
    }
}
