//! NUMA-locality instrumentation demo: runs the paper's MC write-heavy
//! workload against the lazy layered skip graph and a lock-free skip list,
//! then prints the Table-1-style locality summary and a node-pair access
//! heatmap for both — the same machinery behind Figures 6–9/14–17.
//!
//! ```text
//! cargo run --release --example numa_heatmap
//! ```

use instrument::report::{accesses_by_node_pair, locality_summary, render_ascii_heatmap};
use instrument::AccessStats;
use numa::{Placement, Topology};
use std::sync::Arc;
use std::time::Duration;
use synchro::registry::run_named;
use synchro::{InstrMode, Workload};

const THREADS: usize = 8;

fn main() {
    let topology = Topology::detect_or_paper();
    println!("topology: {topology}");
    let placement = Placement::new(&topology, THREADS);
    let mut numa_of = placement.numa_nodes();
    if numa_of.iter().all(|&n| n == numa_of[0]) {
        // All threads fit one socket: classify against the modeled split
        // at T/2 (the boundary the membership vectors encode) so the
        // local/remote columns stay meaningful at small scale.
        numa_of = (0..THREADS).map(|t| usize::from(t >= THREADS / 2)).collect();
        println!("(single-socket placement; using modeled 2-node split)");
    }
    println!("thread -> NUMA node: {numa_of:?}");

    let workload = Workload::mc(THREADS)
        .write_heavy()
        .duration(Duration::from_millis(300));

    for structure in ["lazy_layered_sg", "skiplist"] {
        let stats = AccessStats::new(THREADS);
        let res = run_named(structure, &workload, &InstrMode::Stats(Arc::clone(&stats)));
        let summary = locality_summary(&stats, &numa_of);
        println!("\n== {structure} ==");
        println!(
            "throughput: {:.0} ops/ms ({:.1}% effective updates)",
            res.ops_per_ms(),
            res.effective_update_pct()
        );
        println!(
            "reads/op: {:.2} local + {:.2} remote (locality {:.1}%)",
            summary.local_reads_per_op,
            summary.remote_reads_per_op,
            100.0 * summary.read_locality()
        );
        println!(
            "maintenance CAS/op: {:.4} local + {:.4} remote, success rate {:.3}",
            summary.local_cas_per_op, summary.remote_cas_per_op, summary.cas_success_rate
        );
        println!("CAS heatmap ({THREADS}x{THREADS}, log-shaded):");
        print!("{}", render_ascii_heatmap(stats.cas(), 16));
        let nodes = numa_of.iter().copied().max().unwrap_or(0) + 1;
        println!("aggregated by NUMA-node pair:");
        for (i, row) in accesses_by_node_pair(stats.cas(), &numa_of, nodes)
            .iter()
            .enumerate()
        {
            println!("  from node {i}: {row:?}");
        }
    }
    println!(
        "\nThe layered structure should show markedly higher locality than \
         the skip list (paper: 70% fewer remote CAS/op at 96 threads)."
    );

    // Hash-index occupancy heatmap: load an indexed map and show how the
    // keys landed across the per-NUMA-segment tables — the tuning signal
    // for `GraphConfig::index_capacity` (entries crowding the occupancy
    // threshold — `AdaptConfig::occ_grow_pct`, default 75% — mean an
    // imminent grow; mass in the histogram's upper buckets means long
    // probe chains despite free space, the displacement signal the
    // adaptive probe sensor grows on). Adaptation is configured here so
    // the probe-signal grow counter below is live.
    let map: skipgraph::LayeredMap<u64, u64> = skipgraph::LayeredMap::new(
        skipgraph::GraphConfig::new(THREADS)
            .lazy(true)
            .hash_index(true)
            .adapt(skipgraph::AdaptConfig::new()),
    );
    {
        let mut h = map.register(instrument::ThreadCtx::plain(0));
        for k in 0..40_000u64 {
            h.insert(k.wrapping_mul(0x9E37_79B9) >> 8, k);
        }
        for k in 0..10_000u64 {
            h.remove(&(k.wrapping_mul(0x9E37_79B9) >> 8));
        }
    }
    let mem = map.shared().memory_stats(&instrument::ThreadCtx::plain(0));
    println!(
        "\n== hash-index occupancy ({} segments, {} slots total) ==",
        mem.index_segments, mem.index_capacity
    );
    for (i, seg) in map.shared().index_occupancy().iter().enumerate() {
        let hist: Vec<u64> = seg.probe_histogram.to_vec();
        println!(
            "  segment {i}: {}/{} entries ({:.0}% load, {} tombstones), \
             mean probe {:.2}, histogram {:?}",
            seg.entries,
            seg.capacity,
            100.0 * seg.load_factor(),
            seg.tombstones,
            seg.mean_probe(),
            hist
        );
    }
    println!(
        "probe-signal grows: {} (occupancy-threshold grows are not counted)",
        map.shared().index_probe_grows()
    );

    // Adaptation state: drive the adaptive replicated map through a
    // write burst and a read sweep, printing the controller's view after
    // each — the mode the replication knob is in, how often it switched,
    // and what the sensor's last window saw. The tiny window makes the
    // demo switch in a few hundred ops; production defaults are larger.
    println!("\n== adaptation state (replication knob) ==");
    let tiny = skipgraph::AdaptConfig::new().window_ops(256).dwell_windows(0);
    let amap: skipgraph::ReplicatedLayeredMap<u64, u64> =
        skipgraph::ReplicatedLayeredMap::new(
            skipgraph::GraphConfig::new(2)
                .lazy(true)
                .hash_index(true)
                .adapt(tiny),
            skipgraph::ReplicaConfig::uniform(2, 2).adapt(tiny),
        );
    let print_snap = |label: &str| {
        let s = amap.adapt_state().expect("adaptation is configured");
        println!(
            "  after {label}: mode {} (gen {}), {} downshifts / {} upshifts over {} windows, \
             last window {}% writes ({} ops in the open one)",
            s.mode, s.generation, s.downshifts, s.upshifts, s.windows, s.last_write_pct,
            s.open_window_ops
        );
    };
    {
        let mut h = amap.register(instrument::ThreadCtx::plain(0));
        for k in 0..2_000u64 {
            h.insert(k, k);
        }
        print_snap("2000 inserts (write-heavy)");
        for k in 0..2_000u64 {
            h.contains(&k);
        }
        print_snap("2000 reads  (read-heavy)");
    }

    // The block layer's ascending-run gate: a sorted insert stream
    // engages leave-behind splits (split point pushed right, so the
    // left block stays full instead of half-empty).
    println!("\n== adaptation state (ascending-split knob) ==");
    let bmap: skipgraph::BlockedSkipMap<u64, u64> = skipgraph::BlockedSkipMap::new(
        skipgraph::GraphConfig::new(1).adapt(skipgraph::AdaptConfig::new().window_ops(64)),
        8,
    );
    {
        let mut h = bmap.register(instrument::ThreadCtx::plain(0));
        for k in 0..2_000u64 {
            h.insert(k, k);
        }
    }
    let asc = bmap.asc_state().expect("adaptation is configured");
    let anchors = bmap.stats(&instrument::ThreadCtx::plain(0)).anchors;
    println!(
        "  after 2000 ascending inserts: gate {} ({} switches, last window {}% ascending), \
         {} anchors at block cap 8",
        if asc.engaged { "engaged" } else { "disengaged" },
        asc.switches,
        asc.last_asc_pct,
        anchors
    );
}
