//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal API-compatible stand-ins for its external dependencies (see
//! `vendor/README.md`). This crate provides seedable xoshiro256++ RNGs with
//! the `Rng`/`SeedableRng` surface the repo calls: `seed_from_u64`, `gen`,
//! `gen_bool`, and `gen_range` over half-open integer ranges. It is NOT a
//! drop-in replacement for the real crate beyond that surface, and the
//! streams differ from upstream `rand` — seeds are stable only within this
//! workspace.

use std::ops::Range;

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling helpers layered over [`RngCore`] (the `rand::Rng` surface).
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }

    /// A uniform draw from a half-open range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Primitive types samplable uniformly over their natural domain
/// (the `Standard` distribution).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types uniformly samplable from a half-open range.
pub trait UniformInt: Copy + PartialOrd {
    /// Draws uniformly from `range` (panics when empty).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 * span.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((range.start as i64).wrapping_add(hi as i64)) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// A small fast seedable generator (xoshiro256++ here).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// The "standard" generator (same algorithm as [`SmallRng`] in this
    /// shim, distinct stream).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed ^ 0xA5A5_A5A5_5A5A_5A5A))
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((hits as f64 / 100_000.0 - 0.2).abs() < 0.02);
    }

    use super::RngCore;
}
