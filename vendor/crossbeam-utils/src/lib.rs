//! Offline shim for the subset of `crossbeam-utils` this workspace uses:
//! just [`CachePadded`].

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes, preventing false sharing between
/// adjacent values in arrays (two cache lines on x86 to defeat the spatial
/// prefetcher, matching upstream's x86-64 choice).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::CachePadded;

    #[test]
    fn alignment_and_deref() {
        let v = CachePadded::new(5u8);
        assert_eq!(*v, 5);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let boxed = Box::new(CachePadded::new(7u64));
        assert_eq!(&**boxed as *const u64 as usize % 128, 0);
    }
}
