//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Implements the `proptest!` macro (both `name in strategy` and
//! `name: Type` argument forms), `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, integer-range and tuple strategies,
//! `proptest::collection::vec`, `prop::sample::Index`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each test runs `cases` seeded-random cases (no shrinking).
//! The per-test RNG seed derives from the test name and the
//! `PROPTEST_SEED` environment variable when set, so failures are
//! reproducible by exporting the seed printed in the panic message.

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// A test-case failure (what `prop_assert!` produces and `?` propagates).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// An aborted (discarded) case; the shim treats it as a failure.
    pub fn abort(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl<S: Into<String>> From<S> for TestCaseError {
    fn from(s: S) -> Self {
        Self(s.into())
    }
}

/// Runner configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a seeded sampler.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// A `Vec` strategy with lengths drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = if self.sizes.is_empty() {
                self.sizes.start
            } else {
                rng.gen_range(self.sizes.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategy combinators beyond the basics.
pub mod strategy {
    use super::{BoxedStrategy, SmallRng, Strategy};
    use rand::Rng;
    use std::fmt::Debug;

    /// A uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }
}

/// Support types mirrored from `proptest::prop` paths.
pub mod sample {
    use super::{Arbitrary, SmallRng};
    use rand::Rng;

    /// An index sampler: an arbitrary raw value projected into `0..len`
    /// via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// This index projected into `0..len` (panics when `len == 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            Self(rng.gen())
        }
    }
}

#[doc(hidden)]
pub mod runtime {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Builds the deterministic per-test RNG: FNV-1a over the test name,
    /// mixed with `PROPTEST_SEED` when set.
    pub fn rng_for(test_name: &str) -> (SmallRng, u64) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                h ^= seed;
            }
        }
        (SmallRng::seed_from_u64(h), h)
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// `prop::...` paths (e.g. `prop::sample::Index`).
    pub mod prop {
        pub use crate::sample;
        pub use crate::{collection, strategy};
    }
}

/// Asserts inside a `proptest!` body; failing returns an error for the
/// runner instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)*)
            )));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}",
                file!(), line!(), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}: {}",
                file!(), line!(), a, b, format!($($fmt)*)
            )));
        }
    }};
}

/// A uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The test-defining macro. Supports an optional
/// `#![proptest_config(...)]` header and any mix of `name in strategy`
/// and `name: Type` parameters.
#[macro_export]
macro_rules! proptest {
    // Entry with explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns [$cfg] $($rest)*);
    };
    // @fns: munch one fn item at a time.
    (@fns [$cfg:expr]) => {};
    (@fns [$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@parse [$cfg] [$(#[$meta])*] $name [] [$($args)*] $body);
        $crate::proptest!(@fns [$cfg] $($rest)*);
    };
    // @parse: munch the parameter list into (name, strategy) pairs.
    (@parse [$cfg:expr] [$($meta:tt)*] $name:ident [$(($n:ident, $s:expr))*]
        [] $body:block) => {
        $crate::proptest!(@emit [$cfg] [$($meta)*] $name [$(($n, $s))*] $body);
    };
    (@parse [$cfg:expr] [$($meta:tt)*] $name:ident [$(($n:ident, $s:expr))*]
        [$an:ident in $as:expr] $body:block) => {
        $crate::proptest!(@emit [$cfg] [$($meta)*] $name [$(($n, $s))* ($an, $as)] $body);
    };
    (@parse [$cfg:expr] [$($meta:tt)*] $name:ident [$(($n:ident, $s:expr))*]
        [$an:ident in $as:expr, $($rest:tt)*] $body:block) => {
        $crate::proptest!(@parse [$cfg] [$($meta)*] $name [$(($n, $s))* ($an, $as)]
            [$($rest)*] $body);
    };
    (@parse [$cfg:expr] [$($meta:tt)*] $name:ident [$(($n:ident, $s:expr))*]
        [$an:ident: $at:ty] $body:block) => {
        $crate::proptest!(@emit [$cfg] [$($meta)*] $name
            [$(($n, $s))* ($an, $crate::any::<$at>())] $body);
    };
    (@parse [$cfg:expr] [$($meta:tt)*] $name:ident [$(($n:ident, $s:expr))*]
        [$an:ident: $at:ty, $($rest:tt)*] $body:block) => {
        $crate::proptest!(@parse [$cfg] [$($meta)*] $name
            [$(($n, $s))* ($an, $crate::any::<$at>())] [$($rest)*] $body);
    };
    // @emit: generate the test fn. Attributes (including `#[test]`) come
    // from the call site via `$meta`; emitting `#[test]` here as well would
    // register every suite twice, since idiomatic call sites already write
    // the attribute themselves.
    (@emit [$cfg:expr] [$($meta:tt)*] $name:ident [$(($n:ident, $s:expr))*] $body:block) => {
        $($meta)*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let (mut rng, seed) =
                $crate::runtime::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $n = $crate::Strategy::generate(&($s), &mut rng);)*
                let desc = String::new()
                    $(+ &format!("{} = {:?}; ", stringify!($n), &$n))*;
                let result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} failed (rng seed {seed}): {e}\n  inputs: {desc}"
                    );
                }
            }
        }
    };
    // Entry without config header.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns [$crate::ProptestConfig::default()] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mixed arg forms parse and generate in-range values.
        #[test]
        #[allow(unused_comparisons)]
        fn mixed_args(
            flag: bool,
            x in 3u64..10,
            v in collection::vec(any::<u8>(), 0..5),
            pair in (0u8..3, 1usize..4),
            choice in prop_oneof![Just(1u64), Just(5u64)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(x >= 3 && x < 10, "x = {x}");
            prop_assert!(v.len() < 5);
            prop_assert!(pair.0 < 3 && pair.1 >= 1 && pair.1 < 4);
            prop_assert!(choice == 1 || choice == 5);
            prop_assert_eq!(idx.index(1), 0);
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn no_config_header(a in 0u32..100) {
            prop_assert!(a < 100);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        let (mut a, sa) = crate::runtime::rng_for("t::x");
        let (mut b, sb) = crate::runtime::rng_for("t::x");
        assert_eq!(sa, sb);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
