//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple warm-up + timed-loop mean (no outlier
//! analysis, no HTML reports); results print as `ns/iter` lines. Good
//! enough for regression eyeballing in an offline container; swap in the
//! real crate for publication-quality numbers.

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the shim materializes one input per routine call regardless).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per routine invocation.
    PerIteration,
}

/// Top-level driver handed to each benchmark function.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_size: 20,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(name, &mut f);
    }
}

/// A named group with its own timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the measured duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the sample count (accepted; the shim times one long run).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let name = name.into();
        let full = if self.name.is_empty() {
            name
        } else {
            format!("{}/{}", self.name, name)
        };
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            ns_per_iter: f64::NAN,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            println!("bench: {full:<50} {:>12.1} ns/iter ({} iters)", b.ns_per_iter, b.iters);
        } else {
            println!("bench: {full:<50} (no measurement)");
        }
    }

    /// Ends the group (no-op; printing is immediate).
    pub fn finish(self) {}
}

/// Times the closure handed to `bench_function`.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: discover a batch size that makes clock reads cheap.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_deadline {
            for _ in 0..64 {
                black_box(routine());
            }
            warm_iters += 64;
        }
        let batch = (warm_iters / 50).clamp(1, 1 << 16);
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let deadline = self.measurement_time;
        while elapsed < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let _ = warm_iters;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measurement_time {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Declares a group-runner function calling each benchmark in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a `--test`
            // invocation only smoke-checks that benches compile and run.
            let test_only = std::env::args().any(|a| a == "--test");
            if test_only {
                return;
            }
            $($group();)+
        }
    };
}
