//! Offline shim for the subset of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] with infallible (non-poisoning) guards.
//!
//! `Mutex` is a yielding spinlock rather than a std wrapper because the
//! workspace relies on parking_lot's raw-lock idiom of
//! `mem::forget(guard)` + [`Mutex::force_unlock`] (hand-over-hand victim
//! locking in the optimistic skip list), which `std::sync::MutexGuard`
//! cannot express. `RwLock` sees only balanced lock/unlock pairs and
//! wraps `std::sync::RwLock`.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutex supporting `parking_lot`'s raw unlock idiom.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks (spinning, then yielding) until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return MutexGuard { lock: self };
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Tries to take the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| MutexGuard { lock: self })
    }

    /// Releases a lock whose guard was leaked with `mem::forget`.
    ///
    /// # Safety
    ///
    /// The mutex must be locked by the current context, with no live
    /// guard (the guard must have been forgotten).
    pub unsafe fn force_unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.value.get() }
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Takes a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn forget_then_force_unlock() {
        let m = Mutex::new(7);
        std::mem::forget(m.lock());
        assert!(m.try_lock().is_none()); // still held
        unsafe { m.force_unlock() };
        assert_eq!(*m.lock(), 7); // lockable again
    }

    #[test]
    fn mutex_excludes_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
