//! Offline shim for the subset of `libc` this workspace uses: CPU-affinity
//! types and syscall wrappers (`cpu_set_t`, `CPU_ZERO`/`CPU_SET`,
//! `sched_setaffinity`, `sched_getcpu`). Declares the glibc symbols
//! directly; the layout of [`cpu_set_t`] matches glibc's 1024-bit set.

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// POSIX process id.
pub type pid_t = i32;
/// C `size_t`.
pub type size_t = usize;

/// Number of CPUs representable in a [`cpu_set_t`] (glibc default).
pub const CPU_SETSIZE: c_int = 1024;

const NWORDS: usize = (CPU_SETSIZE as usize) / 64;

/// glibc-layout CPU set: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; NWORDS],
}

/// Clears every CPU in the set.
#[allow(non_snake_case)]
pub fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; NWORDS];
}

/// Adds `cpu` to the set (out-of-range ids are ignored, as in glibc).
#[allow(non_snake_case)]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / 64] |= 1 << (cpu % 64);
    }
}

/// Whether `cpu` is in the set.
#[allow(non_snake_case)]
pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / 64] & (1 << (cpu % 64)) != 0
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Binds `pid` (0 = calling thread) to the CPUs in `cpuset`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    /// The CPU the calling thread is running on.
    pub fn sched_getcpu() -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_layout_matches_glibc() {
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
        let mut s: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_ZERO(&mut s);
        CPU_SET(3, &mut s);
        assert!(CPU_ISSET(3, &s));
        assert!(!CPU_ISSET(4, &s));
        CPU_SET(1 << 20, &mut s); // ignored, no panic
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn getcpu_answers() {
        assert!(unsafe { sched_getcpu() } >= 0);
    }
}
